package harness

// Serving-extension experiments: chunked prefill, prefix-cache sharing and
// load-balanced fleets. These go beyond the paper's single-request
// measurements, but each one asks the paper's question — where does the
// TEE overhead land — under a production serving technique that shifts
// work across the compute-bound prefill / memory-bound decode boundary.

import (
	"fmt"

	"cllm/internal/dtype"
	"cllm/internal/gramine"
	"cllm/internal/hw"
	"cllm/internal/perf"
	"cllm/internal/serve"
	"cllm/internal/tee"
	"cllm/internal/trace"
)

func init() {
	register(Experiment{
		ID:    "chunked",
		Title: "Chunked prefill: TPOT tail vs TTFT at equal load (7B, TDX)",
		Paper: "Extension: monolithic prefills stall in-flight decodes (tail TPOT); chunking bounds the stall at the cost of TTFT — the tradeoff lands on the paper's compute/memory overhead split",
		Run:   runChunkedPrefill,
	})
	register(Experiment{
		ID:    "prefix",
		Title: "Prefix-cache sharing on a RAG burst: goodput gain per platform (7B)",
		Paper: "Extension: shared-prefix reuse saves compute everywhere but memory only where it is scarce — the gain is largest on an EPC-bounded SGX enclave",
		Run:   runPrefixCache,
	})
	register(Experiment{
		ID:    "fleet",
		Title: "Load-balanced fleets: prefix-affinity vs round-robin vs least-loaded (7B, TDX ×4)",
		Paper: "Extension: simulated (not extrapolated) fleet serving — cache-aware dispatch concentrates prefix reuse, cutting median TTFT at equal goodput",
		Run:   runFleet,
	})
}

// chunkedBackend is the CPU deployment the chunked/fleet experiments use.
func chunkedBackend(p tee.Platform) serve.Backend {
	return serve.Backend{CPU: perf.CPURun{CPU: hw.EMR1(), Platform: p, Sockets: 1, AMX: true}}
}

func runChunkedPrefill(o Options) (*Result, error) {
	res := &Result{ID: "chunked", Title: "Chunked prefill vs monolithic at equal load (extension)",
		Header: []string{"chunk(tok)", "TPOT p99(s)", "TPOT mean(s)", "TTFT p50(s)", "TTFT p99(s)", "SLO%", "completed"}}

	outLen := o.tokens(32)
	chunkSizes := []int{0, 128, 256}
	var tpotP99, ttftP50 []float64
	for _, chunk := range chunkSizes {
		rep, err := serve.Run(chunkedBackend(tee.TDX()), serve.Config{
			Workload:    trace.Workload{Model: mustModel("llama2-7b"), Kind: dtype.BF16, InputLen: 1024, OutputLen: outLen},
			Rate:        0.35,
			Requests:    24,
			Seed:        o.Seed,
			MaxBatch:    16,
			ChunkTokens: chunk,
		})
		if err != nil {
			return nil, err
		}
		tpotP99 = append(tpotP99, rep.TPOT.P99)
		ttftP50 = append(ttftP50, rep.TTFT.P50)
		res.Rows = append(res.Rows, []string{
			fmt.Sprintf("%d", chunk),
			fmt.Sprintf("%.4f", rep.TPOT.P99), fmt.Sprintf("%.4f", rep.TPOT.Mean),
			fmt.Sprintf("%.3f", rep.TTFT.P50), fmt.Sprintf("%.3f", rep.TTFT.P99),
			fmt.Sprintf("%.0f%%", rep.SLOAttainment()*100),
			fmt.Sprintf("%d", rep.Completed),
		})
	}

	// The headline tradeoff: a bounded chunk interleaves decode steps with
	// prefill, so the decode cadence never stalls behind a 1024-token
	// prompt pass — tail TPOT drops; spreading the prompt over several
	// hybrid iterations raises TTFT.
	res.Checks = append(res.Checks, Check{
		Name: "chunked prefill cuts p99 TPOT vs monolithic at equal load",
		Pass: tpotP99[1] < tpotP99[0],
		Detail: fmt.Sprintf("chunk %d: %.4fs vs monolithic %.4fs",
			chunkSizes[1], tpotP99[1], tpotP99[0]),
	}, Check{
		Name: "chunked prefill pays with higher median TTFT",
		Pass: ttftP50[1] > ttftP50[0],
		Detail: fmt.Sprintf("chunk %d: %.3fs vs monolithic %.3fs",
			chunkSizes[1], ttftP50[1], ttftP50[0]),
	})
	res.Notes = append(res.Notes,
		"Monolithic prefills run as dedicated iterations (decodes stall behind them); chunked iterations are hybrid: one chunk-budget of prompt tokens plus one decode step per round.",
		"Chunk costing uses trace.PrefillChunkStep: attention grows with the cached history while projections scale with the chunk, so late chunks are more memory-bound than early ones.")
	return res, nil
}

// ragBurstTrace is the shared-prefix workload of the prefix experiment: a
// fan-out burst where every request carries one of two 832-token document
// prefixes ahead of a distinct question, then generates a long answer
// (decode-heavy, so KV residency — not prefill — is the scarce resource).
func ragBurstTrace(n, outLen int) []serve.Request {
	tr := make([]serve.Request, n)
	for i := range tr {
		tr[i] = serve.Request{
			ID: i, ArrivalSec: float64(i) * 0.05,
			InputLen: 1024, OutputLen: outLen,
			PrefixID: i%2 + 1, PrefixLen: 832,
		}
	}
	return tr
}

func runPrefixCache(o Options) (*Result, error) {
	res := &Result{ID: "prefix", Title: "Prefix-cache sharing gain per platform on a RAG burst (extension)",
		Header: []string{"platform", "share", "goodput(tok/s)", "tput(tok/s)", "SLO%", "preempt", "hit(tok)", "TTFT p99(s)"}}

	// The SGX deployment is deliberately enclave-bounded: weights (~13.5 GB
	// at bf16) plus a ~2.5 GB KV budget. Sharing then decides whether the
	// batch fits the enclave; on TDX/baremetal (256 GB DRAM) it only saves
	// prefill compute. Output length stays decode-heavy regardless of
	// -quick: the workload shape is the experiment, and simulated decode
	// steps are cheap.
	sgx, err := tee.SGX(gramine.DefaultManifest("/models/llama2.bin", 16<<30, 64))
	if err != nil {
		return nil, err
	}
	plats := []tee.Platform{tee.Baremetal(), tee.TDX(), sgx}
	outLen := 256
	tr := ragBurstTrace(24, outLen)

	gains := make([]float64, len(plats))
	var sgxNoSharePreempt, sgxSharePreempt int
	for pi, p := range plats {
		var goodput [2]float64
		for si, share := range []bool{false, true} {
			rep, err := serve.Run(chunkedBackend(p), serve.Config{
				Workload:      trace.Workload{Model: mustModel("llama2-7b"), Kind: dtype.BF16},
				Trace:         tr,
				Seed:          o.Seed,
				MaxBatch:      8,
				PrefixSharing: share,
				TTFTSLOSec:    60, TPOTSLOSec: 1.0,
			})
			if err != nil {
				return nil, err
			}
			goodput[si] = rep.GoodputTokensPerSec
			if p.Name == "SGX" {
				if share {
					sgxSharePreempt = rep.Preemptions
				} else {
					sgxNoSharePreempt = rep.Preemptions
				}
			}
			res.Rows = append(res.Rows, []string{
				p.Name, fmt.Sprintf("%v", share),
				fmt.Sprintf("%.1f", rep.GoodputTokensPerSec), fmt.Sprintf("%.1f", rep.TokensPerSec),
				fmt.Sprintf("%.0f%%", rep.SLOAttainment()*100),
				fmt.Sprintf("%d", rep.Preemptions),
				fmt.Sprintf("%d", rep.PrefixCacheHitTokens),
				fmt.Sprintf("%.1f", rep.TTFT.P99),
			})
		}
		if goodput[0] > 0 {
			gains[pi] = goodput[1] / goodput[0]
		}
	}

	const bm, tdx, sgxI = 0, 1, 2
	for pi, p := range plats {
		res.Checks = append(res.Checks, Check{
			Name:   "prefix sharing raises goodput (" + p.Name + ")",
			Pass:   gains[pi] > 1.2,
			Detail: fmt.Sprintf("share/no-share goodput ratio %.2f", gains[pi]),
		})
	}
	res.Checks = append(res.Checks, Check{
		Name: "sharing gain largest on memory-starved SGX",
		Pass: gains[sgxI] > gains[tdx] && gains[sgxI] > gains[bm],
		Detail: fmt.Sprintf("SGX %.2f vs TDX %.2f vs baremetal %.2f",
			gains[sgxI], gains[tdx], gains[bm]),
	}, Check{
		Name: "sharing relieves SGX KV pressure (fewer preemptions)",
		Pass: sgxSharePreempt < sgxNoSharePreempt || (sgxSharePreempt == 0 && sgxNoSharePreempt == 0),
		Detail: fmt.Sprintf("SGX preemptions %d without sharing, %d with",
			sgxNoSharePreempt, sgxSharePreempt),
	})
	res.Notes = append(res.Notes,
		"Sharing deduplicates both KV residency (fewer blocks) and the TLB/EPC working set (shared pages are mapped once however many rows stream them), so the enclave-bounded SGX deployment regains full batch depth.",
		"On TDX and baremetal the pool is never the binding constraint; the gain is the skipped prefix prefill only.")
	return res, nil
}

func runFleet(o Options) (*Result, error) {
	res := &Result{ID: "fleet", Title: "Fleet dispatch policies with prefix sharing (extension)",
		Header: []string{"policy", "goodput(tok/s)", "SLO%", "TTFT p50(s)", "TTFT p99(s)", "hit(tok)", "dispatch"}}

	cfg := serve.Config{
		Workload:      trace.Workload{Model: mustModel("llama2-7b"), Kind: dtype.BF16, InputLen: 1024, OutputLen: o.tokens(32)},
		Rate:          3,
		Requests:      48,
		Seed:          o.Seed,
		MaxBatch:      16,
		ChunkTokens:   256,
		PrefixSharing: true,
		PrefixGroups:  16,
		PrefixFrac:    0.75,
		TTFTSLOSec:    4, TPOTSLOSec: 0.5,
	}
	policies := []serve.LBPolicy{serve.RoundRobin, serve.LeastLoaded, serve.PrefixAffinity}
	// The policy runs are independent simulations over one backend:
	// evaluate them on the worker pool sharing one costing table, merge in
	// policy order.
	be := chunkedBackend(tee.TDX())
	coster, err := serve.NewStepCoster(be, cfg)
	if err != nil {
		return nil, err
	}
	be.Coster = coster
	frs := make([]*serve.FleetReport, len(policies))
	err = parallelFor(o.workers(), len(policies), func(i int) error {
		fr, err := serve.RunFleet(be, cfg, serve.FleetConfig{Replicas: 4, Policy: policies[i]})
		if err != nil {
			return err
		}
		frs[i] = fr
		return nil
	})
	if err != nil {
		return nil, err
	}
	goodputs := make([]float64, len(policies))
	hits := make([]int, len(policies))
	ttftP50 := make([]float64, len(policies))
	for i, pol := range policies {
		fr := frs[i]
		agg := fr.Aggregate
		goodputs[i] = agg.GoodputTokensPerSec
		hits[i] = agg.PrefixCacheHitTokens
		ttftP50[i] = agg.TTFT.P50
		res.Rows = append(res.Rows, []string{
			pol.String(),
			fmt.Sprintf("%.1f", agg.GoodputTokensPerSec),
			fmt.Sprintf("%.0f%%", fr.SLOAttainment()*100),
			fmt.Sprintf("%.2f", agg.TTFT.P50), fmt.Sprintf("%.2f", agg.TTFT.P99),
			fmt.Sprintf("%d", agg.PrefixCacheHitTokens),
			fmt.Sprintf("%v", fr.Dispatch),
		})
	}

	const rr, ll, pa = 0, 1, 2
	_ = ll
	res.Checks = append(res.Checks, Check{
		Name:   "prefix-affinity concentrates cache hits vs round-robin",
		Pass:   float64(hits[pa]) > 1.5*float64(hits[rr]),
		Detail: fmt.Sprintf("affinity %d hit tokens vs round-robin %d", hits[pa], hits[rr]),
	}, Check{
		Name:   "prefix-affinity cuts median TTFT vs round-robin",
		Pass:   ttftP50[pa] < ttftP50[rr],
		Detail: fmt.Sprintf("affinity %.2fs vs round-robin %.2fs", ttftP50[pa], ttftP50[rr]),
	}, Check{
		Name:   "prefix-affinity goodput at least matches round-robin",
		Pass:   goodputs[pa] >= 0.97*goodputs[rr],
		Detail: fmt.Sprintf("affinity %.1f tok/s vs round-robin %.1f", goodputs[pa], goodputs[rr]),
	})

	// Fleet sizing by simulation: smallest fleet whose simulated attainment
	// reaches 95% at the offered rate, replica interference included.
	// Candidate sizes are speculated on the worker pool; the answer is
	// byte-identical to the serial search.
	n, sized, err := serve.SizeFleetForSLOParallel(be, cfg, serve.PrefixAffinity, 0.95, 8, o.workers())
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, []string{
		fmt.Sprintf("sized@95%%: %d replicas", n),
		fmt.Sprintf("%.1f", sized.Aggregate.GoodputTokensPerSec),
		fmt.Sprintf("%.0f%%", sized.SLOAttainment()*100),
		fmt.Sprintf("%.2f", sized.Aggregate.TTFT.P50), fmt.Sprintf("%.2f", sized.Aggregate.TTFT.P99),
		fmt.Sprintf("%d", sized.Aggregate.PrefixCacheHitTokens),
		fmt.Sprintf("%v", sized.Dispatch),
	})
	res.Checks = append(res.Checks, Check{
		Name:   "simulated fleet sizing reaches the attainment target",
		Pass:   n >= 1 && n <= 8 && sized.SLOAttainment() >= 0.95,
		Detail: fmt.Sprintf("%d replicas reach %.0f%% attainment at %.1f req/s", n, sized.SLOAttainment()*100, cfg.Rate),
	})
	res.Notes = append(res.Notes,
		"All replicas share one simulated clock; the balancer dispatches each arrival at arrival time (round-robin, least-loaded, or prefix-affinity with a load guard against hash skew).",
		"Fleet sizing is simulated end to end — compare cloud.ReplicasForRate, which extrapolates from a single replica's SLO-compliant rate.")
	return res, nil
}
