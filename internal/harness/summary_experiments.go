package harness

import (
	"fmt"

	"cllm/internal/dtype"
	"cllm/internal/hw"
	"cllm/internal/rag"
	"cllm/internal/stats"
	"cllm/internal/tee"
	"cllm/internal/trace"
)

func init() {
	register(Experiment{
		ID:    "fig1",
		Title: "Headline summary: Llama2-7B bf16 throughput under App (SGX), VM (TDX) and GPU TEEs",
		Paper: "TEEs cost only 4-7% throughput for cLLM inference vs 100s of % for other applications (Fig 1)",
		Run:   runFig1,
	})
	register(Experiment{
		ID:    "fig14",
		Title: "RAG pipelines (BM25, reranked BM25, SBERT) inside TDX",
		Paper: "Whole-pipeline TDX overheads 6.03-7.33%, VM 2.78-3.74% (Fig 14, Insight 12)",
		Run:   runFig14,
	})
	register(Experiment{
		ID:    "table1",
		Title: "Summary matrix: security, performance and cost per TEE (Table I)",
		Paper: "SGX/TDX full memory protection, H100 HBM unencrypted and NVLink unprotected; overheads ~4-10%",
		Run:   runTable1,
	})
	register(Experiment{
		ID:    "othermodels",
		Title: "Other dense LLMs under TDX (Llama3-8B, GPT-J, Falcon, Baichuan2, Qwen)",
		Paper: "3.1-13.1% overheads, in line with Llama2-7B (§III-C)",
		Run:   runOtherModels,
	})
	register(Experiment{
		ID:    "snc",
		Title: "Sub-NUMA clustering ablation (§IV-A.1)",
		Paper: "Enabling SNC takes TEE overhead from ≈5% to ≈42%",
		Run:   runSNC,
	})
}

func runFig1(o Options) (*Result, error) {
	res := &Result{ID: "fig1", Title: "Headline TEE overheads (Fig 1)",
		Header: []string{"platform", "class", "tok/s", "overhead"}}
	cfg := mustModel("llama2-7b")
	out := o.tokens(64)
	wl := trace.Workload{Model: cfg, Kind: dtype.BF16, Batch: 6, Beam: 4, InputLen: 1024, OutputLen: out}
	sgx, err := sgxPlatform()
	if err != nil {
		return nil, err
	}
	bm, err := runCPU(tee.Baremetal(), hw.EMR1(), wl, 1, 0, true, 1, o.Seed)
	if err != nil {
		return nil, err
	}
	sg, err := runCPU(sgx, hw.EMR1(), wl, 1, 0, true, 1, o.Seed)
	if err != nil {
		return nil, err
	}
	tdx, err := runCPU(tee.TDX(), hw.EMR1(), wl, 1, 0, true, 1, o.Seed)
	if err != nil {
		return nil, err
	}
	wlG := trace.Workload{Model: cfg, Kind: dtype.BF16, Batch: 6, Beam: 1, InputLen: 1024, OutputLen: out}
	g, c, err := runGPUPair(wlG, o.Seed)
	if err != nil {
		return nil, err
	}
	sgxOv := stats.ThroughputOverheadPct(bm.DecodeThroughput(), sg.DecodeThroughput())
	tdxOv := stats.ThroughputOverheadPct(bm.DecodeThroughput(), tdx.DecodeThroughput())
	gpuOv := stats.ThroughputOverheadPct(g.DecodeThroughput(), c.DecodeThroughput())
	res.Rows = append(res.Rows,
		[]string{"baremetal", "-", fmt.Sprintf("%.1f", bm.DecodeThroughput()), "0%"},
		[]string{"SGX (App TEE)", "process", fmt.Sprintf("%.1f", sg.DecodeThroughput()), pct(sgxOv)},
		[]string{"TDX (VM TEE)", "vm", fmt.Sprintf("%.1f", tdx.DecodeThroughput()), pct(tdxOv)},
		[]string{"GPU", "-", fmt.Sprintf("%.0f", g.DecodeThroughput()), "0%"},
		[]string{"cGPU", "gpu", fmt.Sprintf("%.0f", c.DecodeThroughput()), pct(gpuOv)},
	)
	res.Checks = append(res.Checks,
		band("App TEE (SGX) overhead", sgxOv, 3, 8),
		band("VM TEE (TDX) overhead", tdxOv, 4, 11),
		band("GPU TEE (cGPU) overhead", gpuOv, 3, 9),
	)
	return res, nil
}

func runFig14(o Options) (*Result, error) {
	res := &Result{ID: "fig14", Title: "RAG pipelines in TEEs (Fig 14)",
		Header: []string{"system", "nDCG@10", "baremetal(ms)", "VM", "TDX", "paper VM", "paper TDX"}}
	docs := 50
	queries := 3
	if o.Quick {
		docs, queries = 20, 2
	}
	corpus, err := rag.GenerateCorpus(docs, queries, o.Seed)
	if err != nil {
		return nil, err
	}
	pipe, err := rag.NewPipeline(corpus, o.Seed)
	if err != nil {
		return nil, err
	}
	paper := map[rag.Method][2]float64{
		rag.MethodBM25Reranked: {2.78, 6.03},
		rag.MethodBM25:         {3.74, 6.47},
		rag.MethodSBERT:        {3.08, 7.33},
	}
	for _, m := range []rag.Method{rag.MethodBM25Reranked, rag.MethodBM25, rag.MethodSBERT} {
		var times [3]float64
		var ndcg float64
		for i, plat := range []tee.Platform{tee.Baremetal(), tee.VM(tee.VMFullHuge), tee.TDX()} {
			tm := rag.Timing{CPU: hw.EMR2(), Platform: plat, Cores: 32, Seed: o.Seed}
			mean, nd, err := tm.MeanQueryTime(pipe, corpus, m)
			if err != nil {
				return nil, err
			}
			times[i] = mean
			ndcg = nd
		}
		vmOv := stats.OverheadPct(times[0], times[1])
		tdxOv := stats.OverheadPct(times[0], times[2])
		res.Rows = append(res.Rows, []string{m.String(), fmt.Sprintf("%.3f", ndcg),
			fmt.Sprintf("%.2f", times[0]*1e3), pct(vmOv), pct(tdxOv),
			pct(paper[m][0]), pct(paper[m][1])})
		res.Checks = append(res.Checks,
			band("TDX overhead for "+m.String()+" (paper ~6-7%)", tdxOv, 3, 11),
			Check{Name: "VM < TDX for " + m.String(), Pass: vmOv < tdxOv,
				Detail: fmt.Sprintf("VM %.2f%% vs TDX %.2f%%", vmOv, tdxOv)},
		)
	}
	res.Notes = append(res.Notes, "Insight 12: the full RAG pipeline in TDX shows the same overhead level as LLM inference.")
	return res, nil
}

// securityRow is one qualitative Table I row derived from platform flags.
func securityRow(name string, p tee.Platform) []string {
	full, half, none := "full", "partial", "none"
	memProt := none
	if p.Protected && p.Class != tee.ClassGPU {
		memProt = full
	} else if p.Class == tee.ClassGPU {
		memProt = none // H100 HBM unencrypted
	}
	scaleUp := none
	switch {
	case p.Class == tee.ClassVM || p.Class == tee.ClassProcess:
		scaleUp = full // encrypted UPI
	case p.Class == tee.ClassGPU:
		scaleUp = half // NVLink unprotected, host-routed
	}
	vmProt := none
	switch p.Class {
	case tee.ClassVM, tee.ClassGPU:
		vmProt = full
	case tee.ClassProcess:
		vmProt = none // SGX excludes the VM/OS from the TCB by design
	}
	osProt := none
	switch p.Class {
	case tee.ClassVM, tee.ClassGPU:
		osProt = full
	case tee.ClassProcess:
		osProt = half // libOS only
	}
	return []string{name, memProt, scaleUp, osProt, vmProt}
}

func runTable1(o Options) (*Result, error) {
	res := &Result{ID: "table1", Title: "System summary matrix (Table I)",
		Header: []string{"system", "hw memory", "scale-up", "OS layer", "VM layer"}}
	sgx, err := sgxPlatform()
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows,
		securityRow("SGX (process TEE)", sgx),
		securityRow("TDX (VM TEE)", tee.TDX()),
		securityRow("H100 cGPU (GPU TEE)", tee.CGPU()),
	)

	// Quantitative half: single-resource overheads per class.
	fig1, err := runFig1(o)
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, []string{"", "", "", "", ""})
	res.Rows = append(res.Rows, []string{"overheads", "SGX ~4-5%", "TDX ~5-10%", "cGPU ~4-8%", "(paper)"})
	for _, c := range fig1.Checks {
		res.Checks = append(res.Checks, c)
	}
	// Qualitative assertions straight from platform capability flags.
	cg := tee.CGPU()
	res.Checks = append(res.Checks,
		Check{Name: "H100 HBM unencrypted", Pass: !cg.HBMEncrypted, Detail: "Table I: GPU hardware memory = empty"},
		Check{Name: "H100 NVLink unprotected", Pass: !cg.NVLinkProtected, Detail: "Table I: GPU scale-up = partial"},
		Check{Name: "TDX trusts the whole VM", Pass: tee.TDX().Class == tee.ClassVM, Detail: "larger TCB than SGX"},
	)
	return res, nil
}

func runOtherModels(o Options) (*Result, error) {
	res := &Result{ID: "othermodels", Title: "Other dense LLMs under TDX (§III-C)",
		Header: []string{"model", "params(B)", "baremetal tok/s", "TDX overhead"}}
	out := o.tokens(48)
	names := []string{"llama2-7b", "llama3-8b", "gptj-6b", "falcon-7b", "baichuan2-7b", "qwen-7b"}
	var ovs []float64
	for _, n := range names {
		cfg := mustModel(n)
		wl := trace.Workload{Model: cfg, Kind: dtype.BF16, Batch: 6, Beam: 4, InputLen: 1024, OutputLen: out}
		bm, err := runCPU(tee.Baremetal(), hw.EMR1(), wl, 1, 0, true, 1, o.Seed)
		if err != nil {
			return nil, err
		}
		tdx, err := runCPU(tee.TDX(), hw.EMR1(), wl, 1, 0, true, 1, o.Seed)
		if err != nil {
			return nil, err
		}
		ov := stats.ThroughputOverheadPct(bm.DecodeThroughput(), tdx.DecodeThroughput())
		ovs = append(ovs, ov)
		res.Rows = append(res.Rows, []string{n, fmt.Sprintf("%.1f", float64(cfg.ParamCount())/1e9),
			fmt.Sprintf("%.1f", bm.DecodeThroughput()), pct(ov)})
	}
	lo, hi := ovs[0], ovs[0]
	for _, v := range ovs {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	res.Checks = append(res.Checks,
		band("minimum overhead across models (paper range 3.1-13.1%)", lo, 2, 13.1),
		band("maximum overhead across models (paper range 3.1-13.1%)", hi, 3.1, 14),
	)
	return res, nil
}

func runSNC(o Options) (*Result, error) {
	res := &Result{ID: "snc", Title: "Sub-NUMA clustering ablation (§IV-A.1)",
		Header: []string{"config", "tok/s", "overhead vs baremetal"}}
	cfg := mustModel("llama2-7b")
	out := o.tokens(48)
	wl := trace.Workload{Model: cfg, Kind: dtype.BF16, Batch: 6, Beam: 4, InputLen: 1024, OutputLen: out}
	bm, err := runCPU(tee.Baremetal(), hw.EMR2(), wl, 2, 0, true, 1, o.Seed)
	if err != nil {
		return nil, err
	}
	tdx, err := runCPU(tee.TDX(), hw.EMR2(), wl, 2, 0, true, 1, o.Seed)
	if err != nil {
		return nil, err
	}
	snc, err := runCPU(tee.TDX().WithSNC(), hw.EMR2(), wl, 2, 0, true, 1, o.Seed)
	if err != nil {
		return nil, err
	}
	ovTDX := stats.ThroughputOverheadPct(bm.DecodeThroughput(), tdx.DecodeThroughput())
	ovSNC := stats.ThroughputOverheadPct(bm.DecodeThroughput(), snc.DecodeThroughput())
	res.Rows = append(res.Rows,
		[]string{"baremetal", fmt.Sprintf("%.1f", bm.DecodeThroughput()), "0%"},
		[]string{"TDX (SNC off)", fmt.Sprintf("%.1f", tdx.DecodeThroughput()), pct(ovTDX)},
		[]string{"TDX (SNC on)", fmt.Sprintf("%.1f", snc.DecodeThroughput()), pct(ovSNC)},
	)
	res.Checks = append(res.Checks,
		band("TDX+SNC overhead (paper ≈42%)", ovSNC, 25, 60),
		Check{Name: "SNC multiplies TEE overhead", Pass: ovSNC > 1.8*ovTDX,
			Detail: fmt.Sprintf("%.1f%% → %.1f%%", ovTDX, ovSNC)},
	)
	res.Notes = append(res.Notes, "The paper disables SNC for all other experiments; so do we.")
	return res, nil
}
