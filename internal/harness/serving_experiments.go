package harness

import (
	"fmt"

	"cllm/internal/cloud"
	"cllm/internal/dtype"
	"cllm/internal/hw"
	"cllm/internal/perf"
	"cllm/internal/serve"
	"cllm/internal/tee"
	"cllm/internal/trace"
)

func init() {
	register(Experiment{
		ID:    "serving",
		Title: "Continuous-batching serving under load: arrival rate × platform (7B, EMR1)",
		Paper: "Extension beyond the paper's single-request runs: TEE overheads under production load — confidential platforms show higher tail TTFT and need more SLO replicas; goodput saturates then degrades",
		Run:   runServing,
	})
}

// servingRates are the offered Poisson rates swept per platform; the last
// two sit past the single-replica saturation point of the 7B workload.
var servingRates = []float64{2, 6, 12, 20}

func runServing(o Options) (*Result, error) {
	res := &Result{ID: "serving", Title: "Serving throughput–latency curves (extension)",
		Header: []string{"platform", "rate(req/s)", "tput(tok/s)", "goodput", "SLO%", "TTFT p99(s)", "TPOT(s)", "replicas@SLO", "$/Mtok@SLO"}}

	sgx, err := sgxPlatform()
	if err != nil {
		return nil, err
	}
	plats := []tee.Platform{tee.Baremetal(), tee.TDX(), sgx}
	requests := 64
	if o.Quick {
		requests = 32
	}
	outLen := o.tokens(32)
	hourly, err := cloud.DefaultPrices().HourlyCost(cloud.CPUInstance{VCPUs: hw.EMR1().CoresPerSocket, MemGiB: 128})
	if err != nil {
		return nil, err
	}

	// The (platform × rate) grid cells are independent simulations: evaluate
	// them on the worker pool, each platform's cells sharing one memoized
	// step-costing table, then merge in grid order — the rendered table is
	// identical at any worker count.
	cfgFor := func(rate float64) serve.Config {
		return serve.Config{
			Workload: trace.Workload{Model: mustModel("llama2-7b"), Kind: dtype.BF16, InputLen: 128, OutputLen: outLen},
			Rate:     rate,
			Requests: requests,
			Seed:     o.Seed,
		}
	}
	backends := make([]serve.Backend, len(plats))
	for pi, p := range plats {
		be := serve.Backend{CPU: perf.CPURun{CPU: hw.EMR1(), Platform: p, Sockets: 1, AMX: true}}
		coster, err := serve.NewStepCoster(be, cfgFor(servingRates[0]))
		if err != nil {
			return nil, err
		}
		be.Coster = coster
		backends[pi] = be
	}
	reports := make([][]*serve.Report, len(plats))
	for pi := range reports {
		reports[pi] = make([]*serve.Report, len(servingRates))
	}
	err = parallelFor(o.workers(), len(plats)*len(servingRates), func(i int) error {
		pi, ri := i/len(servingRates), i%len(servingRates)
		rep, err := serve.Run(backends[pi], cfgFor(servingRates[ri]))
		if err != nil {
			return err
		}
		reports[pi][ri] = rep
		return nil
	})
	if err != nil {
		return nil, err
	}

	// goodputs[platform][rate index]; ttftP99 and replicas likewise.
	goodputs := make([][]float64, len(plats))
	ttftP99 := make([][]float64, len(plats))
	replicas := make([][]int, len(plats))
	tputs := make([][]float64, len(plats))
	for pi, p := range plats {
		for ri, rate := range servingRates {
			rep := reports[pi][ri]
			goodputs[pi] = append(goodputs[pi], rep.GoodputTokensPerSec)
			ttftP99[pi] = append(ttftP99[pi], rep.TTFT.P99)
			tputs[pi] = append(tputs[pi], rep.TokensPerSec)
			repl, cost := "-", "-"
			nRepl := 0
			if c, err := rep.CostAtSLO(hourly); err == nil {
				nRepl = c.Replicas
				repl = fmt.Sprintf("%d", c.Replicas)
				cost = fmt.Sprintf("%.2f", c.USDPerMTok)
			}
			replicas[pi] = append(replicas[pi], nRepl)
			res.Rows = append(res.Rows, []string{p.Name, fmt.Sprintf("%.0f", rate),
				fmt.Sprintf("%.1f", rep.TokensPerSec), fmt.Sprintf("%.1f", rep.GoodputTokensPerSec),
				fmt.Sprintf("%.0f%%", rep.SLOAttainment()*100),
				fmt.Sprintf("%.3f", rep.TTFT.P99), fmt.Sprintf("%.3f", rep.TPOT.Mean),
				repl, cost})
		}
	}

	const bm, tdx, sgxI = 0, 1, 2
	last := len(servingRates) - 1
	mid := 2 // first past-saturation rate

	// Confidential platforms pay their protection in the tail.
	res.Checks = append(res.Checks, Check{
		Name: "SGX p99 TTFT above baremetal at equal rate",
		Pass: ttftP99[sgxI][mid] > ttftP99[bm][mid],
		Detail: fmt.Sprintf("rate %.0f: SGX %.3fs vs baremetal %.3fs",
			servingRates[mid], ttftP99[sgxI][mid], ttftP99[bm][mid]),
	}, Check{
		Name: "TDX p99 TTFT above baremetal at equal rate",
		Pass: ttftP99[tdx][mid] > ttftP99[bm][mid],
		Detail: fmt.Sprintf("rate %.0f: TDX %.3fs vs baremetal %.3fs",
			servingRates[mid], ttftP99[tdx][mid], ttftP99[bm][mid]),
	})

	// Goodput rolls over: once past saturation, more offered load does not
	// create more SLO-compliant output (small tolerance for jitter).
	for pi, p := range plats {
		peak := 0.0
		for _, g := range goodputs[pi] {
			if g > peak {
				peak = g
			}
		}
		res.Checks = append(res.Checks, Check{
			Name: "goodput non-increasing past saturation (" + p.Name + ")",
			Pass: goodputs[pi][last] <= goodputs[pi][mid]*1.05 && goodputs[pi][last] <= peak*1.05,
			Detail: fmt.Sprintf("goodput %.1f → %.1f tok/s from rate %.0f to %.0f (peak %.1f)",
				goodputs[pi][mid], goodputs[pi][last], servingRates[mid], servingRates[last], peak),
		})
	}

	// The headline extension result: hitting the same SLO at the same
	// offered load takes at least as many confidential replicas, and
	// strictly more for TDX (the costliest CPU TEE) past saturation.
	res.Checks = append(res.Checks, Check{
		Name: "confidential replicas >= baremetal replicas at SLO (overload)",
		Pass: replicas[tdx][last] >= replicas[bm][last] && replicas[sgxI][last] >= replicas[bm][last] &&
			replicas[tdx][last] > 0 && replicas[bm][last] > 0,
		Detail: fmt.Sprintf("rate %.0f: baremetal %d, TDX %d, SGX %d",
			servingRates[last], replicas[bm][last], replicas[tdx][last], replicas[sgxI][last]),
	}, Check{
		Name: "TDX needs more replicas than baremetal past saturation",
		Pass: replicas[tdx][last] > replicas[bm][last],
		Detail: fmt.Sprintf("rate %.0f: TDX %d vs baremetal %d",
			servingRates[last], replicas[tdx][last], replicas[bm][last]),
	})

	// Saturated throughput keeps the paper's single-request platform
	// ordering (Insight 5): baremetal fastest, SGX between, TDX slowest.
	res.Checks = append(res.Checks, ordering("saturated throughput baremetal > SGX > TDX",
		[]string{"baremetal", "SGX", "TDX"},
		[]float64{tputs[bm][last], tputs[sgxI][last], tputs[tdx][last]}))

	res.Notes = append(res.Notes,
		"Open-loop Poisson arrivals into a continuous-batching scheduler with paged KV-cache; durations from the mechanistic roofline, so TEE memory encryption, enclave exits and NUMA presentation shape the curves.",
		"Replica counts size a fleet whose per-replica SLO-compliant rate covers the offered rate (TTFT ≤ 5s, TPOT ≤ 0.5s).")
	return res, nil
}
