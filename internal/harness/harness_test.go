package harness

import (
	"encoding/csv"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"fig1", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
		"fig10", "fig11", "fig12", "fig13", "fig14", "table1", "othermodels", "snc",
		"sev", "b100", "scaleout", "hybrid", "spr", "ablation", "serving",
		"chunked", "prefix", "fleet", "hetero", "autoscale", "preempt", "obs",
		"attrib", "overload", "disagg",
	}
	for _, id := range want {
		if _, err := Lookup(id); err != nil {
			t.Errorf("experiment %s not registered: %v", id, err)
		}
	}
	if len(All()) != len(want) {
		t.Errorf("registry has %d experiments, want %d", len(All()), len(want))
	}
	if _, err := Lookup("fig99"); err == nil {
		t.Error("unknown experiment resolved")
	}
}

func TestAllExperimentsPassShapeChecks(t *testing.T) {
	// Every paper artifact must run and reproduce the paper's shape.
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			res, err := e.Run(Options{Seed: 1, Quick: true})
			if err != nil {
				t.Fatalf("%s failed to run: %v", e.ID, err)
			}
			if len(res.Rows) == 0 {
				t.Fatalf("%s produced no rows", e.ID)
			}
			for _, c := range res.Checks {
				if !c.Pass {
					t.Errorf("%s shape check failed: %s (%s)", e.ID, c.Name, c.Detail)
				}
			}
			out := res.Render()
			if !strings.Contains(out, res.ID) {
				t.Error("render missing experiment ID")
			}
		})
	}
}

func TestResultRender(t *testing.T) {
	r := &Result{
		ID: "x", Title: "demo", Header: []string{"a", "bb"},
		Rows:   [][]string{{"1", "2"}},
		Checks: []Check{{Name: "c", Pass: true, Detail: "d"}},
		Notes:  []string{"n"},
	}
	out := r.Render()
	for _, want := range []string{"demo", "bb", "PASS", "note: n"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	if !r.Passed() {
		t.Error("Passed() = false with all-pass checks")
	}
	r.Checks = append(r.Checks, Check{Name: "f", Pass: false})
	if r.Passed() {
		t.Error("Passed() = true with a failing check")
	}
}

func TestChecksHelpers(t *testing.T) {
	if c := band("b", 5, 1, 10); !c.Pass {
		t.Error("band inside range failed")
	}
	if c := band("b", 11, 1, 10); c.Pass {
		t.Error("band outside range passed")
	}
	if c := ordering("o", []string{"a", "b"}, []float64{2, 1}); !c.Pass {
		t.Error("descending ordering failed")
	}
	if c := ordering("o", []string{"a", "b"}, []float64{1, 2}); c.Pass {
		t.Error("ascending ordering passed")
	}
}

// TestSweepExperimentsParallelMatchSerial: the experiments whose sweeps run
// on the worker pool must render the identical Result at workers=1 and
// workers=NumCPU — rows, checks and notes byte for byte.
func TestSweepExperimentsParallelMatchSerial(t *testing.T) {
	for _, id := range []string{"serving", "fleet", "hetero", "autoscale", "preempt", "obs", "attrib", "overload"} {
		id := id
		t.Run(id, func(t *testing.T) {
			e, err := Lookup(id)
			if err != nil {
				t.Fatal(err)
			}
			serial, err := e.Run(Options{Seed: 1, Quick: true, Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			parallel, err := e.Run(Options{Seed: 1, Quick: true, Workers: 4})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(serial, parallel) {
				t.Fatalf("parallel run differs from serial:\nserial:\n%s\nparallel:\n%s",
					serial.Render(), parallel.Render())
			}
		})
	}
}

// TestResultFormatsRoundTrip: the csv|json machine formats must carry the
// full table losslessly — every header and cell survives a parse round
// trip, including cells with commas, quotes and unicode, and rows shorter
// than the header are padded (JSON) rather than dropped.
func TestResultFormatsRoundTrip(t *testing.T) {
	r := &Result{
		ID:     "rt",
		Title:  "round trip",
		Header: []string{"plain", "comma,cell", "quote\"cell", "unicode"},
		Rows: [][]string{
			{"a", "x,y", `say "hi"`, "µ±∞"},
			{"b", "", "-", "swaps 3/4"},
			{"short"},
		},
		Checks: []Check{{Name: "c", Pass: true, Detail: "d"}},
		Notes:  []string{"note,with,commas"},
	}

	rows, err := csv.NewReader(strings.NewReader(r.CSV())).ReadAll()
	if err != nil {
		t.Fatalf("CSV output does not re-parse: %v", err)
	}
	// encoding/csv enforces uniform field counts; the short row must have
	// been emitted ragged-free or the reader rejects it. ReadAll with
	// FieldsPerRecord defaulting to the first record's length already
	// asserted uniformity above for all full-width rows.
	if !reflect.DeepEqual(rows[0], r.Header) {
		t.Fatalf("CSV header round trip: got %q", rows[0])
	}
	for i, want := range r.Rows[:2] {
		if !reflect.DeepEqual(rows[i+1], want) {
			t.Fatalf("CSV row %d round trip: got %q want %q", i, rows[i+1], want)
		}
	}

	out, err := r.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		ID     string              `json:"id"`
		Header []string            `json:"header"`
		Rows   []map[string]string `json:"rows"`
		Checks []struct {
			Name string `json:"name"`
			Pass bool   `json:"pass"`
		} `json:"checks"`
		Notes []string `json:"notes"`
	}
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatalf("JSON output does not re-parse: %v", err)
	}
	if doc.ID != "rt" || !reflect.DeepEqual(doc.Header, r.Header) {
		t.Fatalf("JSON metadata round trip: %+v", doc)
	}
	if len(doc.Rows) != len(r.Rows) {
		t.Fatalf("JSON dropped rows: %d vs %d", len(doc.Rows), len(r.Rows))
	}
	for i, row := range r.Rows {
		for j, h := range r.Header {
			want := ""
			if j < len(row) {
				want = row[j]
			}
			if got := doc.Rows[i][h]; got != want {
				t.Fatalf("JSON row %d %q = %q, want %q", i, h, got, want)
			}
		}
	}
	if len(doc.Checks) != 1 || !doc.Checks[0].Pass || len(doc.Notes) != 1 {
		t.Fatalf("JSON checks/notes round trip: %+v", doc)
	}
}
