package harness

// Overload-and-failure experiments: the robustness face of confidential
// serving. The paper prices TEEs at steady state on a healthy replica;
// production fleets lose replicas (and their enclave-bound KV state) and
// see bursts past capacity. These experiments ask two questions the
// steady-state numbers cannot: (1) does deadline-aware admission control
// protect interactive goodput through a burst-plus-failure storm where
// FIFO queueing collapses everything, and (2) how differently do the TEE
// platforms price the *recovery* from the same failure — the full
// confidential cold start (reboot, weight re-provisioning, enclave/TD
// rebuild, re-attestation) a crash forces.

import (
	"fmt"

	"cllm/internal/dtype"
	"cllm/internal/serve"
	"cllm/internal/tee"
	"cllm/internal/trace"
	"cllm/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "overload",
		Title: "Fault-injected overload: deadline-aware shedding vs FIFO, and TEE-priced recovery (7B)",
		Paper: "Extension: the paper serves healthy replicas at steady state; under a 3x burst with a mid-run crash, FIFO queueing lets expired work starve interactive requests while EDF shedding with retry budgets holds their goodput, and the same crash costs cGPU > SGX > TDX in cold-start downtime",
		Run:   runOverload,
	})
}

// overloadMix crosses interactive chat traffic with background agent
// turns, so admission control has SLO tiers to discriminate between
// (serve.RequestClass is derived from the shape-name prefix).
func overloadMix(outLen int) workload.Mix {
	return workload.Mix{
		{Name: "chat-short", Weight: 3, InputLen: 128, OutputLen: outLen, LengthJitter: 0.2},
		{Name: "agent-turn", Weight: 1, InputLen: 384, OutputLen: outLen, LengthJitter: 0.2},
	}
}

func runOverload(o Options) (*Result, error) {
	res := &Result{ID: "overload", Title: "Failure and overload: admission control and recovery pricing (extension)",
		Header: []string{"run", "admission", "completed", "dropped", "shed", "retries", "crashes", "downtime(s)", "goodput(tok/s)", "inter-goodput(tok/s)", "SLO%"}}

	outLen := o.tokens(32)
	nReq := 240
	if o.Quick {
		nReq = 160
	}
	baseRate := 0.8
	// One crash mid-burst: both overload policies replay the identical
	// failure (and arrival) schedule, so the only degree of freedom between
	// them is what the queue does with infeasible work.
	crashPlan := []serve.FailPoint{{Replica: 0, TimeSec: 40}}
	mk := func(arr workload.Arrivals, admission serve.AdmissionPolicy, plan []serve.FailPoint, retryMax int) serve.Config {
		return serve.Config{
			Workload: trace.Workload{Model: mustModel("llama2-7b"), Kind: dtype.BF16},
			Scenario: &workload.Scenario{Arrivals: arr, Mix: overloadMix(outLen)},
			Requests: nReq,
			Seed:     o.Seed,
			// Shallow batches bound the replica's headroom so the burst is a
			// real overload, and a tight TTFT SLO makes queue time visible as
			// missed deadlines rather than invisible slack.
			MaxBatch:   4,
			TTFTSLOSec: 2,
			Faults:     serve.FaultConfig{Admission: admission, Plan: plan, RetryMax: retryMax},
		}
	}

	type spec struct {
		name string
		be   serve.Backend
		cfg  serve.Config
	}
	tdxBE := chunkedBackend(tee.TDX())
	sgx, err := sgxPlatform()
	if err != nil {
		return nil, err
	}
	specs := []spec{
		// Un-overloaded healthy baseline: the goodput yardstick.
		{"baseline", tdxBE, mk(workload.Poisson{Rate: baseRate}, serve.AdmitFIFO, nil, 0)},
		// 3x MMPP burst plus a crash, FIFO: every arrival queues, deadlines
		// expire invisibly, interactive work starves behind the backlog.
		{"burst+crash fifo", tdxBE, mk(workload.Bursty(3*baseRate), serve.AdmitFIFO, crashPlan, 0)},
		// Same storm, EDF shedding with a retry budget: infeasible requests
		// are turned away early and the freed capacity serves work that can
		// still meet its deadline.
		{"burst+crash shed", tdxBE, mk(workload.Bursty(3*baseRate), serve.AdmitShed, crashPlan, 2)},
		// Recovery pricing: the identical scripted crash on each platform,
		// measured as the cold-start downtime the report bills for it.
		{"recovery tdx", tdxBE, mk(workload.Poisson{Rate: baseRate}, serve.AdmitFIFO, []serve.FailPoint{{TimeSec: 10}}, 0)},
		{"recovery sgx", chunkedBackend(sgx), mk(workload.Poisson{Rate: baseRate}, serve.AdmitFIFO, []serve.FailPoint{{TimeSec: 10}}, 0)},
		{"recovery cgpu", gpuServeBackend(tee.CGPU()), mk(workload.Poisson{Rate: baseRate}, serve.AdmitFIFO, []serve.FailPoint{{TimeSec: 10}}, 0)},
	}
	// Recovery runs only need the downtime of one crash, not a full sweep.
	for i := 3; i < len(specs); i++ {
		specs[i].cfg.Requests = 24
	}

	reps := make([]*serve.Report, len(specs))
	err = parallelFor(o.workers(), len(specs), func(i int) error {
		rep, err := serve.Run(specs[i].be, specs[i].cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", specs[i].name, err)
		}
		reps[i] = rep
		return nil
	})
	if err != nil {
		return nil, err
	}

	interGoodput := func(rep *serve.Report) float64 {
		if rep.MakespanSec <= 0 {
			return 0
		}
		return float64(rep.GoodTokensByClass[serve.ClassInteractive]) / rep.MakespanSec
	}
	for i, sp := range specs {
		rep := reps[i]
		res.Rows = append(res.Rows, []string{
			sp.name,
			sp.cfg.Admission.String(),
			fmt.Sprintf("%d", rep.Completed),
			fmt.Sprintf("%d", rep.Dropped),
			fmt.Sprintf("%d", rep.Sheds),
			fmt.Sprintf("%d", rep.Retries),
			fmt.Sprintf("%d", rep.Crashes),
			fmt.Sprintf("%.2f", rep.DowntimeSec),
			fmt.Sprintf("%.1f", rep.GoodputTokensPerSec),
			fmt.Sprintf("%.1f", interGoodput(rep)),
			pct(rep.SLOAttainment() * 100),
		})
	}

	base, fifo, shed := interGoodput(reps[0]), interGoodput(reps[1]), interGoodput(reps[2])
	if base <= 0 {
		return nil, fmt.Errorf("overload: baseline served no interactive goodput")
	}
	// FIFO must actually collapse — otherwise the storm is too mild for the
	// shed comparison to mean anything — while shedding holds a bounded
	// fraction of the healthy goodput through the same storm.
	res.Checks = append(res.Checks,
		band("FIFO interactive goodput collapses under burst+crash (fraction of baseline)", fifo/base, 0, 0.5),
		band("shed holds interactive goodput through burst+crash (fraction of baseline)", shed/base, 0.6, 2),
		Check{
			Name:   "shedding beats FIFO on interactive goodput under the identical storm",
			Pass:   shed > fifo,
			Detail: fmt.Sprintf("shed %.1f tok/s vs fifo %.1f tok/s (baseline %.1f)", shed, fifo, base),
		},
		ordering("recovery tax (cold-start downtime per crash)",
			[]string{"cgpu", "sgx", "tdx"},
			[]float64{reps[5].DowntimeSec, reps[4].DowntimeSec, reps[3].DowntimeSec}),
	)
	res.Notes = append(res.Notes,
		fmt.Sprintf("interactive goodput: baseline %.1f, fifo %.1f, shed %.1f tok/s; identical bursty arrivals and crash schedule for both policies", base, fifo, shed),
		"recovery downtime is the platform's full confidential cold start: reboot + weight provisioning + enclave/TD rebuild + attestation (cGPU pays host-CVM accept plus dual attestation)")
	return res, nil
}
