package harness

import (
	"fmt"

	"cllm/internal/cloud"
	"cllm/internal/dtype"
	"cllm/internal/hw"
	"cllm/internal/perf"
	"cllm/internal/stats"
	"cllm/internal/tee"
	"cllm/internal/trace"
)

func init() {
	register(Experiment{
		ID:    "fig11",
		Title: "H100 GPU vs cGPU: batch scaling (in=128) and input scaling (batch=4)",
		Paper: "cGPU throughput penalties 4-8%, decreasing with batch and input size (Fig 11, Insight 10)",
		Run:   runFig11,
	})
	register(Experiment{
		ID:    "fig12",
		Title: "vCPU scaling and $/Mtok vs confidential H100 across batch sizes",
		Paper: "cGPU ≈100% more expensive at batch 1, advantage fading to parity near batch 128 (Fig 12, Insight 11)",
		Run:   runFig12,
	})
	register(Experiment{
		ID:    "fig13",
		Title: "vCPU scaling and $/Mtok vs confidential H100 across input sizes (batch 4)",
		Paper: "CPU cost advantage collapses with input size: +86% at 128 tokens to roughly -10% at 256 and far negative at 2048 (Fig 13)",
		Run:   runFig13,
	})
}

func runGPUPair(wl trace.Workload, seed int64) (gpu, cgpu *perf.Result, err error) {
	gpu, err = perf.RunGPU(perf.GPURun{GPU: hw.H100NVL(), Platform: tee.GPU(), Workload: wl, Seed: seed})
	if err != nil {
		return nil, nil, err
	}
	cgpu, err = perf.RunGPU(perf.GPURun{GPU: hw.H100NVL(), Platform: tee.CGPU(), Workload: wl, Seed: seed})
	if err != nil {
		return nil, nil, err
	}
	return gpu, cgpu, nil
}

func runFig11(o Options) (*Result, error) {
	res := &Result{ID: "fig11", Title: "GPU vs cGPU scaling (Fig 11)",
		Header: []string{"sweep", "value", "GPU tok/s", "cGPU tok/s", "overhead", "paper"}}
	cfg := mustModel("llama2-7b")
	out := o.tokens(32)
	paperBatch := map[int]float64{1: 7.45, 2: 7.89, 4: 6.83, 8: 7.12, 16: 7.02, 32: 4.71,
		64: 4.91, 128: 4.87, 256: 5.59, 512: 4.36}
	var batchOv []float64
	for _, bs := range []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 512} {
		wl := trace.Workload{Model: cfg, Kind: dtype.BF16, Batch: bs, Beam: 1, InputLen: 128, OutputLen: out}
		g, c, err := runGPUPair(wl, o.Seed)
		if err != nil {
			return nil, err
		}
		ov := stats.ThroughputOverheadPct(g.DecodeThroughput(), c.DecodeThroughput())
		batchOv = append(batchOv, ov)
		res.Rows = append(res.Rows, []string{"batch", fmt.Sprintf("%d", bs),
			fmt.Sprintf("%.0f", g.DecodeThroughput()), fmt.Sprintf("%.0f", c.DecodeThroughput()),
			pct(ov), pct(paperBatch[bs])})
	}
	paperInput := map[int]float64{128: 6.83, 256: 6.48, 512: 6.53, 1024: 5.55, 2048: 5.15}
	var inputOv []float64
	for _, in := range []int{128, 256, 512, 1024, 2048} {
		wl := trace.Workload{Model: cfg, Kind: dtype.BF16, Batch: 4, Beam: 1, InputLen: in, OutputLen: out}
		g, c, err := runGPUPair(wl, o.Seed)
		if err != nil {
			return nil, err
		}
		// Input scaling includes prefill (vLLM generation throughput).
		ov := stats.ThroughputOverheadPct(g.Throughput(), c.Throughput())
		inputOv = append(inputOv, ov)
		res.Rows = append(res.Rows, []string{"input", fmt.Sprintf("%d", in),
			fmt.Sprintf("%.0f", g.Throughput()), fmt.Sprintf("%.0f", c.Throughput()),
			pct(ov), pct(paperInput[in])})
	}
	res.Checks = append(res.Checks,
		band("cGPU overhead at batch 1 (paper 7.45%)", batchOv[0], 4, 10),
		band("cGPU overhead at batch 512 (paper 4.36%)", batchOv[len(batchOv)-1], 0.5, 7),
		Check{Name: "overhead decreases with batch (Insight 10)",
			Pass:   batchOv[len(batchOv)-1] < batchOv[0],
			Detail: fmt.Sprintf("bs1 %.2f%% → bs512 %.2f%%", batchOv[0], batchOv[len(batchOv)-1])},
		Check{Name: "overhead decreases with input size",
			Pass:   inputOv[len(inputOv)-1] < inputOv[0],
			Detail: fmt.Sprintf("in128 %.2f%% → in2048 %.2f%%", inputOv[0], inputOv[len(inputOv)-1])},
	)
	return res, nil
}

// costSweep runs the Fig 12/13 core: TDX vCPU sweep plus the cGPU point.
func costSweep(o Options, batch, inputLen int) (points []cloud.CostPoint, cgpuCost float64, err error) {
	cfg := mustModel("llama2-7b")
	prices := cloud.DefaultPrices()
	// Cost experiments always use the full 128-token generation: the paper
	// measures long generations, and shortening them would overweight
	// prefill and distort $/Mtok.
	out := 128
	wl := trace.Workload{Model: cfg, Kind: dtype.BF16, Batch: batch, Beam: 1, InputLen: inputLen, OutputLen: out}
	for _, v := range []int{2, 4, 8, 16, 32, 48, 60} {
		r, err := perf.RunCPU(perf.CPURun{
			CPU: hw.EMR2(), Platform: tee.TDX(), Workload: wl,
			Sockets: 1, CoresPerSocket: v, AMX: true, Seed: o.Seed,
		})
		if err != nil {
			return nil, 0, err
		}
		c, err := prices.CPUCostPerMTokens(v, r.Throughput())
		if err != nil {
			return nil, 0, err
		}
		points = append(points, cloud.CostPoint{VCPUs: v, TokensPerSec: r.Throughput(), USDPerMTok: c})
	}
	g, err := perf.RunGPU(perf.GPURun{GPU: hw.H100NVL(), Platform: tee.CGPU(), Workload: wl, Seed: o.Seed})
	if err != nil {
		return nil, 0, err
	}
	cgpuCost, err = prices.CGPUCostPerMTokens(g.Throughput())
	if err != nil {
		return nil, 0, err
	}
	return points, cgpuCost, nil
}

func runFig12(o Options) (*Result, error) {
	res := &Result{ID: "fig12", Title: "vCPU scaling and cost vs cGPU across batch sizes (Fig 12)",
		Header: []string{"batch", "best vCPUs", "TDX tok/s", "TDX $/Mtok", "cGPU $/Mtok", "TDX advantage", "paper"}}
	paperAdv := map[int]float64{1: 100.32, 4: 86.04, 16: 61.75, 64: 27.87}
	var advs []float64
	for _, bs := range []int{1, 4, 16, 64} {
		pts, cg, err := costSweep(o, bs, 128)
		if err != nil {
			return nil, err
		}
		best, err := cloud.Cheapest(pts)
		if err != nil {
			return nil, err
		}
		adv := cloud.AdvantagePct(best.USDPerMTok, cg)
		advs = append(advs, adv)
		res.Rows = append(res.Rows, []string{fmt.Sprintf("%d", bs), fmt.Sprintf("%d", best.VCPUs),
			fmt.Sprintf("%.1f", best.TokensPerSec), fmt.Sprintf("$%.2f", best.USDPerMTok),
			fmt.Sprintf("$%.2f", cg), pct(adv), pct(paperAdv[bs])})
	}
	res.Checks = append(res.Checks,
		band("TDX advantage at batch 1 (paper ≈100%)", advs[0], 50, 170),
		ordering("advantage fades with batch", []string{"bs1", "bs4", "bs16", "bs64"}, advs),
		band("TDX advantage at batch 64 (paper ≈28%)", advs[3], 5, 55),
	)
	res.Notes = append(res.Notes,
		"Insight 11: for small LLMs at small batch/input sizes, CPU TEEs are the pragmatic, cheaper way to secure inference.")
	return res, nil
}

func runFig13(o Options) (*Result, error) {
	res := &Result{ID: "fig13", Title: "vCPU scaling and cost vs cGPU across input sizes (Fig 13)",
		Header: []string{"input", "best vCPUs", "TDX tok/s", "TDX $/Mtok", "cGPU $/Mtok", "TDX advantage", "paper"}}
	paperAdv := map[int]float64{256: -10.94, 512: -58.76, 1024: -82.25, 2048: -92.51}
	var advs []float64
	for _, in := range []int{256, 512, 1024, 2048} {
		pts, cg, err := costSweep(o, 4, in)
		if err != nil {
			return nil, err
		}
		best, err := cloud.Cheapest(pts)
		if err != nil {
			return nil, err
		}
		// Paper convention in Fig 13: negative = TDX more expensive; they
		// quote cGPU's advantage relative to TDX, so flip the baseline.
		adv := -cloud.AdvantagePct(cg, best.USDPerMTok)
		advs = append(advs, adv)
		res.Rows = append(res.Rows, []string{fmt.Sprintf("%d", in), fmt.Sprintf("%d", best.VCPUs),
			fmt.Sprintf("%.1f", best.TokensPerSec), fmt.Sprintf("$%.2f", best.USDPerMTok),
			fmt.Sprintf("$%.2f", cg), pct(cloud.AdvantagePct(best.USDPerMTok, cg)), pct(paperAdv[in])})
		advs[len(advs)-1] = cloud.AdvantagePct(best.USDPerMTok, cg)
	}
	res.Checks = append(res.Checks,
		ordering("CPU advantage collapses with input size",
			[]string{"in256", "in512", "in1024", "in2048"}, advs),
		Check{Name: "advantage collapses by ≥50 points from in256 to in2048",
			Pass:   advs[0]-advs[len(advs)-1] >= 50,
			Detail: fmt.Sprintf("in256 %.1f%% → in2048 %.1f%%", advs[0], advs[len(advs)-1])},
	)
	res.Notes = append(res.Notes,
		"Deviation: the paper reports the advantage turning negative already at input 256; "+
			"our mechanistic model reproduces the monotone collapse but not the sign flip "+
			"(see EXPERIMENTS.md for the analysis).")
	return res, nil
}
