// Package harness is the experiment registry of the reproduction: one
// runnable experiment per paper table and figure. Each experiment produces
// the same rows/series the paper reports, alongside the paper's published
// values and a set of shape checks (orderings, bands, crossovers) that
// assert the reproduction preserves the paper's findings.
package harness

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"cllm/internal/par"
)

// Options tunes experiment execution.
type Options struct {
	// Seed drives all noise models.
	Seed int64
	// Quick shrinks output-token counts for fast CI runs.
	Quick bool
	// Workers bounds concurrent evaluation of an experiment's independent
	// simulation runs (sweep cells: platform × rate grids, policy sweeps,
	// candidate fleet sizes). Every run is independently seeded and results
	// are merged in sweep order, so any worker count renders the identical
	// Result — the harness test asserts serial/parallel equality. Default
	// (<= 1) runs everything on the caller's goroutine.
	Workers int
}

// workers resolves the effective worker-pool width (at least 1).
func (o Options) workers() int {
	if o.Workers < 1 {
		return 1
	}
	return o.Workers
}

// parallelFor evaluates fn(0..n-1) on up to workers goroutines and returns
// the lowest-index error. Each fn must write its outcome into an
// index-addressed slot owned by the caller, which then consumes the slots
// in deterministic order — the merge never depends on completion order
// (see internal/par).
func parallelFor(workers, n int, fn func(int) error) error {
	return par.For(workers, n, fn)
}

// tokens returns the output length to simulate: the paper measures ≥1000
// output tokens; Quick runs use fewer.
func (o Options) tokens(full int) int {
	if o.Quick && full > 24 {
		return 24
	}
	return full
}

// Check is one shape assertion against the paper.
type Check struct {
	Name   string
	Pass   bool
	Detail string
}

// Result is a completed experiment: a formatted table plus checks.
type Result struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Checks []Check
	Notes  []string
}

// Passed reports whether every shape check held.
func (r *Result) Passed() bool {
	for _, c := range r.Checks {
		if !c.Pass {
			return false
		}
	}
	return true
}

// Render formats the result as an aligned text table.
func (r *Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s — %s ==\n", r.ID, r.Title)
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(r.Header)
	for _, row := range r.Rows {
		writeRow(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	for _, c := range r.Checks {
		status := "PASS"
		if !c.Pass {
			status = "FAIL"
		}
		fmt.Fprintf(&b, "check [%s] %s: %s\n", status, c.Name, c.Detail)
	}
	return b.String()
}

// CSV renders the result's table as RFC-4180 CSV: one header line followed
// by the data rows, every record padded to the header's width so strict
// readers (uniform FieldsPerRecord) always accept the output. Checks and
// notes are not part of the tabular schema — machine consumers wanting
// them should use JSON. The column schema per tool is documented in
// docs/serving-model.md.
func (r *Result) CSV() string {
	var b strings.Builder
	w := csv.NewWriter(&b)
	_ = w.Write(r.Header)
	for _, row := range r.Rows {
		if len(row) < len(r.Header) {
			padded := make([]string, len(r.Header))
			copy(padded, row)
			row = padded
		}
		_ = w.Write(row)
	}
	w.Flush()
	return b.String()
}

// JSON renders the full result — metadata, rows keyed by header name,
// shape checks and notes — as an indented JSON document (schema in
// docs/serving-model.md). Rows shorter than the header are padded with
// empty strings.
func (r *Result) JSON() (string, error) {
	type check struct {
		Name   string `json:"name"`
		Pass   bool   `json:"pass"`
		Detail string `json:"detail"`
	}
	rows := make([]map[string]string, len(r.Rows))
	for i, row := range r.Rows {
		m := make(map[string]string, len(r.Header))
		for j, h := range r.Header {
			if j < len(row) {
				m[h] = row[j]
			} else {
				m[h] = ""
			}
		}
		rows[i] = m
	}
	checks := make([]check, len(r.Checks))
	for i, c := range r.Checks {
		checks[i] = check{Name: c.Name, Pass: c.Pass, Detail: c.Detail}
	}
	doc := struct {
		ID     string              `json:"id"`
		Title  string              `json:"title"`
		Header []string            `json:"header"`
		Rows   []map[string]string `json:"rows"`
		Checks []check             `json:"checks,omitempty"`
		Notes  []string            `json:"notes,omitempty"`
	}{r.ID, r.Title, r.Header, rows, checks, r.Notes}
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return "", err
	}
	return string(out) + "\n", nil
}

// Experiment is a registered paper artifact.
type Experiment struct {
	ID    string
	Title string
	// Paper describes what the paper reports for this artifact.
	Paper string
	Run   func(Options) (*Result, error)
}

var registry = map[string]Experiment{}

func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("harness: duplicate experiment " + e.ID)
	}
	registry[e.ID] = e
}

// All returns every experiment sorted by ID.
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Lookup finds an experiment by ID.
func Lookup(id string) (Experiment, error) {
	e, ok := registry[id]
	if !ok {
		ids := make([]string, 0, len(registry))
		for k := range registry {
			ids = append(ids, k)
		}
		sort.Strings(ids)
		return Experiment{}, fmt.Errorf("harness: unknown experiment %q (have %v)", id, ids)
	}
	return e, nil
}

// band checks a value against an expected range.
func band(name string, v, lo, hi float64) Check {
	return Check{
		Name:   name,
		Pass:   v >= lo && v <= hi,
		Detail: fmt.Sprintf("measured %.2f, paper band [%.2f, %.2f]", v, lo, hi),
	}
}

// ordering checks a strict descending chain.
func ordering(name string, labels []string, vals []float64) Check {
	pass := true
	for i := 1; i < len(vals); i++ {
		if vals[i] >= vals[i-1] {
			pass = false
		}
	}
	parts := make([]string, len(vals))
	for i := range vals {
		parts[i] = fmt.Sprintf("%s=%.3g", labels[i], vals[i])
	}
	return Check{Name: name, Pass: pass, Detail: strings.Join(parts, " > ")}
}

func pct(v float64) string { return fmt.Sprintf("%.2f%%", v) }
