package harness

// Observability experiment: the lifecycle event stream is a lossless
// decomposition of the aggregate serve.Report. Under a memory-starved
// enclave that exercises every mechanism at once (chunked prefill, prefix
// sharing, swap-to-host preemption, admission drops), the recorded
// timeline must reconstruct the report's counters, per-request metrics and
// quantiles exactly, the exports must be byte-identical across repeated
// runs and worker counts, and attaching the observer must not perturb the
// simulation.

import (
	"encoding/json"
	"fmt"
	"reflect"

	"cllm/internal/dtype"
	"cllm/internal/hw"
	"cllm/internal/mem"
	"cllm/internal/model"
	"cllm/internal/obs"
	"cllm/internal/perf"
	"cllm/internal/serve"
	"cllm/internal/tee"
	"cllm/internal/trace"
)

func init() {
	register(Experiment{
		ID:    "obs",
		Title: "Observability: event stream ↔ report conservation and deterministic exports",
		Paper: "Extension: per-request lifecycle tracing reconstructs every aggregate counter exactly; Perfetto/Prometheus/CSV exports are byte-identical across runs and worker counts",
		Run:   runObservability,
	})
}

// obsScenario builds the memory-starved enclave deployment: the KV pool
// holds ~160 tokens against a 16-request burst of prefix-sharing prompts,
// plus one oversized request that can never be admitted — every event kind
// (admit, chunk, preempt, swap out/in, drop, finish) fires.
func obsScenario(o Options) (serve.Backend, serve.Config) {
	m := model.Config{
		Name: "tiny", HiddenDim: 256, Layers: 4, Heads: 8, KVHeads: 8,
		FFDim: 512, VocabSize: 1024, ContextLen: 8192, NormEps: 1e-5, RopeTheta: 10000,
	}
	wl := trace.Workload{Model: m, Kind: dtype.BF16, InputLen: 64, OutputLen: 16}
	weights := int64(trace.WeightFootprint(wl))
	perToken := m.KVCacheBytesPerToken(2)
	p := tee.Baremetal()
	p.Name = "tiny-enclave"
	p.EPC = mem.EPC{Size: weights + 160*perToken, PageInCostFactor: 1}
	be := serve.Backend{CPU: perf.CPURun{CPU: hw.EMR1(), Platform: p, Sockets: 1, AMX: true}}

	tr := make([]serve.Request, 0, 17)
	for i := 0; i < 16; i++ {
		r := serve.Request{ID: i, ArrivalSec: float64(i) * 0.002, InputLen: 64, OutputLen: 32}
		if i%2 == 0 {
			r.PrefixID, r.PrefixLen = 1, 32
		}
		tr = append(tr, r)
	}
	tr = append(tr, serve.Request{ID: 16, ArrivalSec: 0.033, InputLen: 4096, OutputLen: 4})
	cfg := serve.Config{
		Workload: wl, Trace: tr, Seed: o.Seed,
		ChunkTokens: 32, PrefixSharing: true, PreemptPolicy: serve.PreemptSwap,
	}
	return be, cfg
}

func runObservability(o Options) (*Result, error) {
	res := &Result{
		ID:     "obs",
		Title:  "Lifecycle tracing: events ↔ aggregate conservation, deterministic exports (extension)",
		Header: []string{"run", "events", "windows", "arrive", "admit", "chunks", "preempt", "swaps(out/in)", "drops", "finish", "trace(B)", "prom(B)", "csv(B)"},
	}

	be, cfg := obsScenario(o)

	// Baseline without an observer: attaching one must not perturb results.
	base, err := serve.Run(be, cfg)
	if err != nil {
		return nil, err
	}

	// Three observed runs — two single-replica, one 2-replica fleet — each
	// with a private recorder, evaluated on the worker pool. Observers are
	// per-run (never shared across concurrent simulations), so any worker
	// count records the identical streams.
	type run struct {
		name  string
		fleet int
		rec   *obs.Recorder
		rep   *serve.Report
	}
	runs := []*run{
		{name: "single/a", fleet: 1},
		{name: "single/b", fleet: 1},
		{name: "fleet×2", fleet: 2},
	}
	err = parallelFor(o.workers(), len(runs), func(i int) error {
		r := runs[i]
		c := cfg
		r.rec = obs.NewRecorderWindow(0.05, 512)
		c.Observer = r.rec
		if r.fleet > 1 {
			fr, err := serve.RunFleet(be, c, serve.FleetConfig{Replicas: r.fleet, Policy: serve.RoundRobin})
			if err != nil {
				return err
			}
			r.rep = fr.Aggregate
			return nil
		}
		rep, err := serve.Run(be, c)
		if err != nil {
			return err
		}
		r.rep = rep
		return nil
	})
	if err != nil {
		return nil, err
	}

	for _, r := range runs {
		traceJSON := r.rec.PerfettoTrace()
		res.Rows = append(res.Rows, []string{
			r.name,
			fmt.Sprintf("%d", len(r.rec.Events())),
			fmt.Sprintf("%d", len(r.rec.Series().Merged())),
			fmt.Sprintf("%d", r.rec.CountKind(serve.EvArrive)),
			fmt.Sprintf("%d", r.rec.CountKind(serve.EvAdmit)),
			fmt.Sprintf("%d", r.rec.CountKind(serve.EvPrefillChunk)),
			fmt.Sprintf("%d", r.rec.CountKind(serve.EvPreempt)),
			fmt.Sprintf("%d/%d", r.rec.CountKind(serve.EvSwapOut), r.rec.CountKind(serve.EvSwapIn)),
			fmt.Sprintf("%d", r.rec.CountKind(serve.EvDrop)),
			fmt.Sprintf("%d", r.rec.CountKind(serve.EvFinish)),
			fmt.Sprintf("%d", len(traceJSON)),
			fmt.Sprintf("%d", len(obs.PrometheusText(r.rep))),
			fmt.Sprintf("%d", len(r.rec.TimeseriesCSV())),
		})
	}

	// Conservation: each observed run's stream reconstructs its own report
	// exactly — counters, per-request metrics, quantiles, goodput.
	for _, r := range runs {
		bad := obs.ReconcileReport(r.rec.Events(), r.rep)
		detail := "events reconstruct every counter, request metric and quantile bit-exactly"
		if len(bad) > 0 {
			detail = bad[0]
		}
		res.Checks = append(res.Checks, Check{
			Name:   "events ↔ report conservation (" + r.name + ")",
			Pass:   len(bad) == 0,
			Detail: detail,
		})
	}

	// Phase conservation: refolding each stream through the attribution
	// engine partitions every request's latency into queue + prefill +
	// decode + preempt-stall + swap-transfer with zero residue, and the
	// per-request sums match the report's recorded latencies.
	for _, r := range runs {
		bad := obs.ReconcilePhases(r.rec.Events(), r.rep)
		detail := "phase vectors sum to measured latency for every request"
		if len(bad) > 0 {
			detail = bad[0]
		}
		res.Checks = append(res.Checks, Check{
			Name:   "phase attribution conserves latency (" + r.name + ")",
			Pass:   len(bad) == 0,
			Detail: detail,
		})
	}

	// The scenario must exercise the whole event vocabulary.
	missing := ""
	for _, k := range []serve.EventKind{
		serve.EvArrive, serve.EvAdmit, serve.EvPrefillChunk, serve.EvFirstToken,
		serve.EvDecodeRound, serve.EvPreempt, serve.EvSwapOut, serve.EvSwapIn,
		serve.EvDrop, serve.EvFinish,
	} {
		if runs[0].rec.CountKind(k) == 0 {
			missing += " " + k.String()
		}
	}
	res.Checks = append(res.Checks, Check{
		Name:   "scenario exercises all 10 event kinds",
		Pass:   missing == "",
		Detail: fmt.Sprintf("missing kinds:%s", orNone(missing)),
	})

	// Observer neutrality: the observed single run equals the bare run.
	res.Checks = append(res.Checks, Check{
		Name:   "observer does not perturb the simulation",
		Pass:   reflect.DeepEqual(base, runs[0].rep),
		Detail: "report with observer attached is deep-equal to the bare report",
	})

	// Determinism: the two single-replica runs are byte-identical in every
	// export (regardless of worker count — observers are per-run).
	a, b := runs[0], runs[1]
	identical := reflect.DeepEqual(a.rec.Events(), b.rec.Events()) &&
		string(a.rec.PerfettoTrace()) == string(b.rec.PerfettoTrace()) &&
		string(obs.PrometheusText(a.rep)) == string(obs.PrometheusText(b.rep)) &&
		string(a.rec.TimeseriesCSV()) == string(b.rec.TimeseriesCSV())
	res.Checks = append(res.Checks, Check{
		Name:   "repeated runs export byte-identical artifacts",
		Pass:   identical,
		Detail: fmt.Sprintf("trace %dB, prometheus %dB, csv %dB", len(a.rec.PerfettoTrace()), len(obs.PrometheusText(a.rep)), len(a.rec.TimeseriesCSV())),
	})

	// The Perfetto artifact is well-formed trace-event JSON.
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	jsonErr := json.Unmarshal(runs[2].rec.PerfettoTrace(), &doc)
	res.Checks = append(res.Checks, Check{
		Name:   "Perfetto trace is well-formed JSON",
		Pass:   jsonErr == nil && len(doc.TraceEvents) > 0,
		Detail: fmt.Sprintf("%d trace events parsed", len(doc.TraceEvents)),
	})

	res.Notes = append(res.Notes,
		"All timestamps come from the deterministic sim clock — no wall-clock reads anywhere in the pipeline, so artifacts are reproducible byte-for-byte.",
		"The disabled (nil-observer) path is branch-only and allocation-free; BenchmarkServeSchedulerObserved measures the enabled tax.")
	return res, nil
}

// orNone renders an accumulated string or "none".
func orNone(s string) string {
	if s == "" {
		return " none"
	}
	return s
}
