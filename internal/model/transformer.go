package model

import (
	"fmt"
	"math"
	"math/rand"

	"cllm/internal/dtype"
	"cllm/internal/tensor"
)

// block holds one decoder layer's parameters.
type block struct {
	inputNorm []float32 // RMSNorm gain before attention
	postNorm  []float32 // RMSNorm gain before MLP
	wq        *Linear   // hidden -> heads*headDim
	wk        *Linear   // hidden -> kvHeads*headDim
	wv        *Linear   // hidden -> kvHeads*headDim
	wo        *Linear   // hidden -> hidden
	wGate     *Linear   // hidden -> ff
	wUp       *Linear   // hidden -> ff
	wDown     *Linear   // ff -> hidden
}

// Transformer is an instantiated decoder-only model with real weights.
type Transformer struct {
	Config Config
	Kind   dtype.Kind

	embed     *tensor.Tensor // vocab × hidden
	blocks    []*block
	finalNorm []float32
	lmHead    *Linear
}

// Build instantiates the model with deterministic synthetic weights drawn
// from the given seed. Weights use a scaled normal initialization so
// activations stay numerically well-behaved through many layers.
func Build(cfg Config, kind dtype.Kind, seed int64) (*Transformer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	h, f, v := cfg.HiddenDim, cfg.FFDim, cfg.VocabSize
	kv := cfg.KVDim()

	m := &Transformer{Config: cfg, Kind: kind}
	m.embed = tensor.New(v, h)
	fillNormal(rng, m.embed.Data, 1/math.Sqrt(float64(h)))

	newLin := func(out, in int) (*Linear, error) {
		w := make([]float32, out*in)
		fillNormal(rng, w, 1/math.Sqrt(float64(in)))
		return NewLinear(w, out, in, kind)
	}

	for i := 0; i < cfg.Layers; i++ {
		b := &block{
			inputNorm: ones(h),
			postNorm:  ones(h),
		}
		var err error
		if b.wq, err = newLin(h, h); err != nil {
			return nil, err
		}
		if b.wk, err = newLin(kv, h); err != nil {
			return nil, err
		}
		if b.wv, err = newLin(kv, h); err != nil {
			return nil, err
		}
		if b.wo, err = newLin(h, h); err != nil {
			return nil, err
		}
		if b.wGate, err = newLin(f, h); err != nil {
			return nil, err
		}
		if b.wUp, err = newLin(f, h); err != nil {
			return nil, err
		}
		if b.wDown, err = newLin(h, f); err != nil {
			return nil, err
		}
		m.blocks = append(m.blocks, b)
	}
	m.finalNorm = ones(h)
	var err error
	if m.lmHead, err = newLin(v, h); err != nil {
		return nil, err
	}
	return m, nil
}

func fillNormal(rng *rand.Rand, dst []float32, std float64) {
	for i := range dst {
		dst[i] = float32(rng.NormFloat64() * std)
	}
}

func ones(n int) []float32 {
	v := make([]float32, n)
	for i := range v {
		v[i] = 1
	}
	return v
}

// WeightBytes returns the total resident weight footprint.
func (m *Transformer) WeightBytes() int64 {
	elem := int64(m.Kind.Size())
	total := int64(m.embed.NumElements()) * 4 // embeddings kept in f32
	for _, b := range m.blocks {
		total += b.wq.WeightBytes() + b.wk.WeightBytes() + b.wv.WeightBytes() +
			b.wo.WeightBytes() + b.wGate.WeightBytes() + b.wUp.WeightBytes() + b.wDown.WeightBytes()
		total += int64(len(b.inputNorm)+len(b.postNorm)) * 4
	}
	total += m.lmHead.WeightBytes()
	_ = elem
	return total
}

// KVCache stores per-layer key/value history for one sequence.
type KVCache struct {
	cfg    Config
	length int
	k      []*tensor.Tensor // per layer: ContextLen × KVDim
	v      []*tensor.Tensor
}

// NewKVCache allocates an empty cache for the model's context length.
func NewKVCache(cfg Config) *KVCache {
	c := &KVCache{cfg: cfg}
	for i := 0; i < cfg.Layers; i++ {
		c.k = append(c.k, tensor.New(cfg.ContextLen, cfg.KVDim()))
		c.v = append(c.v, tensor.New(cfg.ContextLen, cfg.KVDim()))
	}
	return c
}

// Len returns the number of cached positions.
func (c *KVCache) Len() int { return c.length }

// Bytes returns the live cache footprint at the given element size.
func (c *KVCache) Bytes(elemSize int) int64 {
	return 2 * int64(c.cfg.Layers) * int64(c.length) * int64(c.cfg.KVDim()) * int64(elemSize)
}

// append stores new K/V rows for layer l at positions [length, length+rows).
func (c *KVCache) append(l int, k, v *tensor.Tensor) error {
	rows := k.Shape[0]
	if c.length+rows > c.cfg.ContextLen {
		return fmt.Errorf("model: KV cache overflow: %d+%d > %d", c.length, rows, c.cfg.ContextLen)
	}
	kvd := c.cfg.KVDim()
	copy(c.k[l].Data[c.length*kvd:], k.Data)
	copy(c.v[l].Data[c.length*kvd:], v.Data)
	return nil
}

// Embed encodes tokens into a single vector by running the decoder stack
// and mean-pooling the final hidden states — the Sentence-BERT-style dense
// encoding the RAG pipeline uses for retrieval (§VI).
func (m *Transformer) Embed(tokens []int) ([]float32, error) {
	cache := NewKVCache(m.Config)
	x, err := m.forwardHidden(tokens, cache)
	if err != nil {
		return nil, err
	}
	h := m.Config.HiddenDim
	out := make([]float32, h)
	n := x.Shape[0]
	for t := 0; t < n; t++ {
		row := x.Row(t)
		for i := 0; i < h; i++ {
			out[i] += row[i]
		}
	}
	inv := 1 / float32(n)
	for i := range out {
		out[i] *= inv
	}
	return out, nil
}

// Forward runs the decoder over the given token IDs (a new chunk appended
// after the cache), returning the logits of the final position. The cache is
// advanced by len(tokens). Prefill passes all prompt tokens at once; decode
// passes one token at a time — the two phases the paper's latency metrics
// separate.
func (m *Transformer) Forward(tokens []int, cache *KVCache) ([]float32, error) {
	x, err := m.forwardHidden(tokens, cache)
	if err != nil {
		return nil, err
	}
	cfg := m.Config
	n := x.Shape[0]
	// Final norm + LM head on the last position only.
	last := tensor.New(1, cfg.HiddenDim)
	copy(last.Row(0), x.Row(n-1))
	if err := tensor.RMSNorm(last, m.finalNorm, cfg.NormEps); err != nil {
		return nil, err
	}
	logits, err := m.lmHead.Forward(last)
	if err != nil {
		return nil, err
	}
	return m.round(logits.Row(0)), nil
}

// forwardHidden runs embedding lookup and all decoder blocks, returning the
// final hidden states of the new chunk and advancing the cache.
func (m *Transformer) forwardHidden(tokens []int, cache *KVCache) (*tensor.Tensor, error) {
	if len(tokens) == 0 {
		return nil, fmt.Errorf("model: empty token chunk")
	}
	cfg := m.Config
	n := len(tokens)
	start := cache.Len()

	x := tensor.New(n, cfg.HiddenDim)
	for i, id := range tokens {
		if id < 0 || id >= cfg.VocabSize {
			return nil, fmt.Errorf("model: token %d out of vocab %d", id, cfg.VocabSize)
		}
		copy(x.Row(i), m.embed.Row(id))
	}

	positions := make([]int, n)
	for i := range positions {
		positions[i] = start + i
	}

	for li, b := range m.blocks {
		if err := m.forwardBlock(li, b, x, positions, cache); err != nil {
			return nil, fmt.Errorf("model: layer %d: %w", li, err)
		}
	}
	cache.length += n
	return x, nil
}

func (m *Transformer) forwardBlock(li int, b *block, x *tensor.Tensor, positions []int, cache *KVCache) error {
	cfg := m.Config
	n := x.Shape[0]

	// --- Attention sub-block ---
	normed := x.Clone()
	if err := tensor.RMSNorm(normed, b.inputNorm, cfg.NormEps); err != nil {
		return err
	}
	m.roundTensor(normed)

	q, err := b.wq.Forward(normed)
	if err != nil {
		return err
	}
	k, err := b.wk.Forward(normed)
	if err != nil {
		return err
	}
	v, err := b.wv.Forward(normed)
	if err != nil {
		return err
	}

	// RoPE on Q and K, applied per head pair-wise over the head dimension.
	if err := m.applyRoPEHeads(q, positions, cfg.Heads); err != nil {
		return err
	}
	if err := m.applyRoPEHeads(k, positions, cfg.KVHeads); err != nil {
		return err
	}

	if err := cache.append(li, k, v); err != nil {
		return err
	}
	total := cache.Len() + n // positions visible to the new chunk

	hd := cfg.HeadDim()
	group := cfg.Heads / cfg.KVHeads
	attnOut := tensor.New(n, cfg.HiddenDim)
	scale := float32(1 / math.Sqrt(float64(hd)))

	kvd := cfg.KVDim()
	for h := 0; h < cfg.Heads; h++ {
		kvh := h / group
		for t := 0; t < n; t++ {
			causal := cache.Len() + t + 1 // this token sees history + itself
			if causal > total {
				causal = total
			}
			qRow := q.Row(t)[h*hd : (h+1)*hd]
			scores := make([]float32, causal)
			for s := 0; s < causal; s++ {
				kRow := cache.k[li].Data[s*kvd+kvh*hd : s*kvd+(kvh+1)*hd]
				scores[s] = tensor.Dot(qRow, kRow) * scale
			}
			tensor.SoftmaxInPlace(scores)
			outRow := attnOut.Row(t)[h*hd : (h+1)*hd]
			for s := 0; s < causal; s++ {
				w := scores[s]
				vRow := cache.v[li].Data[s*kvd+kvh*hd : s*kvd+(kvh+1)*hd]
				for d := 0; d < hd; d++ {
					outRow[d] += w * vRow[d]
				}
			}
		}
	}
	m.roundTensor(attnOut)

	proj, err := b.wo.Forward(attnOut)
	if err != nil {
		return err
	}
	if _, err := tensor.Add(x, proj); err != nil { // mha_linear_add in the paper's trace
		return err
	}

	// --- MLP sub-block (linear_silu_mul + mlp_linear_add) ---
	normed2 := x.Clone()
	if err := tensor.RMSNorm(normed2, b.postNorm, cfg.NormEps); err != nil {
		return err
	}
	m.roundTensor(normed2)
	gate, err := b.wGate.Forward(normed2)
	if err != nil {
		return err
	}
	up, err := b.wUp.Forward(normed2)
	if err != nil {
		return err
	}
	tensor.SiLU(gate)
	if _, err := tensor.Mul(gate, up); err != nil {
		return err
	}
	m.roundTensor(gate)
	down, err := b.wDown.Forward(gate)
	if err != nil {
		return err
	}
	if _, err := tensor.Add(x, down); err != nil {
		return err
	}
	return nil
}

// applyRoPEHeads applies rotary embeddings independently per head.
func (m *Transformer) applyRoPEHeads(x *tensor.Tensor, positions []int, heads int) error {
	n := x.Shape[0]
	hd := x.Shape[1] / heads
	tmp := tensor.New(n, hd)
	for h := 0; h < heads; h++ {
		for t := 0; t < n; t++ {
			copy(tmp.Row(t), x.Row(t)[h*hd:(h+1)*hd])
		}
		if err := tensor.RoPE(tmp, positions, m.Config.RopeTheta); err != nil {
			return err
		}
		for t := 0; t < n; t++ {
			copy(x.Row(t)[h*hd:(h+1)*hd], tmp.Row(t))
		}
	}
	return nil
}

// roundTensor pushes activations through the model datatype (bf16 rounding;
// f32 and int8 activations stay f32 between ops — int8 quantization happens
// dynamically inside Linear).
func (m *Transformer) roundTensor(t *tensor.Tensor) {
	if m.Kind != dtype.BF16 {
		return
	}
	for i, v := range t.Data {
		t.Data[i] = dtype.RoundBF16(v)
	}
}

func (m *Transformer) round(v []float32) []float32 {
	if m.Kind != dtype.BF16 {
		return v
	}
	for i := range v {
		v[i] = dtype.RoundBF16(v[i])
	}
	return v
}
