package model

import (
	"fmt"
	"math"

	"cllm/internal/tensor"
)

// GenOptions controls decoding.
type GenOptions struct {
	// MaxNewTokens is the number of tokens to generate.
	MaxNewTokens int
	// BeamSize selects beam search when > 1, greedy otherwise.
	BeamSize int
	// StopToken ends generation early when produced (-1 disables).
	StopToken int
}

// GenResult carries the generated tokens and per-token accounting used by
// the latency/throughput metrics.
type GenResult struct {
	Tokens []int
	// PrefillTokens is the prompt length that was processed in one pass.
	PrefillTokens int
}

// Generate produces tokens after the prompt with greedy decoding or beam
// search. Each sequence keeps its own KV cache, mirroring the paper's
// per-sequence inference state whose movement dominates TEE overhead.
func (m *Transformer) Generate(prompt []int, opts GenOptions) (*GenResult, error) {
	if len(prompt) == 0 {
		return nil, fmt.Errorf("model: empty prompt")
	}
	if opts.MaxNewTokens <= 0 {
		return nil, fmt.Errorf("model: MaxNewTokens must be positive")
	}
	if opts.BeamSize <= 1 {
		return m.greedy(prompt, opts)
	}
	return m.beam(prompt, opts)
}

func (m *Transformer) greedy(prompt []int, opts GenOptions) (*GenResult, error) {
	cache := NewKVCache(m.Config)
	logits, err := m.Forward(prompt, cache)
	if err != nil {
		return nil, err
	}
	res := &GenResult{PrefillTokens: len(prompt)}
	next := tensor.ArgMax(logits)
	for i := 0; i < opts.MaxNewTokens; i++ {
		res.Tokens = append(res.Tokens, next)
		if next == opts.StopToken {
			break
		}
		if i == opts.MaxNewTokens-1 {
			break
		}
		logits, err = m.Forward([]int{next}, cache)
		if err != nil {
			return nil, err
		}
		next = tensor.ArgMax(logits)
	}
	return res, nil
}

type beamState struct {
	cache  *KVCache
	tokens []int
	score  float64
	done   bool
}

func (m *Transformer) beam(prompt []int, opts GenOptions) (*GenResult, error) {
	width := opts.BeamSize
	first := &beamState{cache: NewKVCache(m.Config)}
	logits, err := m.Forward(prompt, first.cache)
	if err != nil {
		return nil, err
	}
	probs := append([]float32(nil), logits...)
	tensor.SoftmaxInPlace(probs)
	var beams []*beamState
	for _, tok := range tensor.TopK(probs, width) {
		b := &beamState{
			cache:  cloneCache(first.cache),
			tokens: []int{tok},
			score:  math.Log(float64(probs[tok]) + 1e-30),
			done:   tok == opts.StopToken,
		}
		beams = append(beams, b)
	}

	for step := 1; step < opts.MaxNewTokens; step++ {
		type cand struct {
			parent *beamState
			tok    int
			score  float64
		}
		var cands []cand
		allDone := true
		for _, b := range beams {
			if b.done {
				cands = append(cands, cand{parent: b, tok: -1, score: b.score})
				continue
			}
			allDone = false
			lg, err := m.Forward([]int{b.tokens[len(b.tokens)-1]}, b.cache)
			if err != nil {
				return nil, err
			}
			p := append([]float32(nil), lg...)
			tensor.SoftmaxInPlace(p)
			for _, tok := range tensor.TopK(p, width) {
				cands = append(cands, cand{parent: b, tok: tok, score: b.score + math.Log(float64(p[tok])+1e-30)})
			}
		}
		if allDone {
			break
		}
		// Select the top `width` candidates by score.
		for i := 0; i < len(cands); i++ {
			for j := i + 1; j < len(cands); j++ {
				if cands[j].score > cands[i].score {
					cands[i], cands[j] = cands[j], cands[i]
				}
			}
		}
		if len(cands) > width {
			cands = cands[:width]
		}
		next := make([]*beamState, 0, width)
		for _, c := range cands {
			if c.tok < 0 { // finished beam carried forward
				next = append(next, c.parent)
				continue
			}
			nb := &beamState{
				cache:  cloneCache(c.parent.cache),
				tokens: append(append([]int(nil), c.parent.tokens...), c.tok),
				score:  c.score,
				done:   c.tok == opts.StopToken,
			}
			next = append(next, nb)
		}
		beams = next
	}

	best := beams[0]
	for _, b := range beams[1:] {
		if b.score > best.score {
			best = b
		}
	}
	return &GenResult{Tokens: best.tokens, PrefillTokens: len(prompt)}, nil
}

func cloneCache(c *KVCache) *KVCache {
	n := NewKVCache(c.cfg)
	n.length = c.length
	for i := range c.k {
		copy(n.k[i].Data, c.k[i].Data)
		copy(n.v[i].Data, c.v[i].Data)
	}
	return n
}
