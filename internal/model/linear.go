package model

import (
	"fmt"

	"cllm/internal/dtype"
	"cllm/internal/tensor"
)

// Linear is a dense projection y = x·Wᵀ whose weights are stored in one of
// the inference datatypes. The float32 master copy is transformed on
// construction (rounded for bf16, quantized per output channel for int8) so
// forward passes exercise the numeric behaviour of each datatype.
type Linear struct {
	// OutDim × InDim, row per output channel.
	OutDim, InDim int
	Kind          dtype.Kind

	f32    *tensor.Tensor // used for F32 and BF16 (pre-rounded) weights
	q      []int8         // used for I8 weights
	scales []float32      // per-channel scales for I8
}

// NewLinear builds a Linear from row-major float32 weights of shape out×in.
func NewLinear(w []float32, outDim, inDim int, kind dtype.Kind) (*Linear, error) {
	if len(w) != outDim*inDim {
		return nil, fmt.Errorf("model: linear %dx%d needs %d weights, got %d", outDim, inDim, outDim*inDim, len(w))
	}
	l := &Linear{OutDim: outDim, InDim: inDim, Kind: kind}
	switch kind {
	case dtype.F32:
		t, err := tensor.FromSlice(append([]float32(nil), w...), outDim, inDim)
		if err != nil {
			return nil, err
		}
		l.f32 = t
	case dtype.BF16:
		rounded := make([]float32, len(w))
		for i, v := range w {
			rounded[i] = dtype.RoundBF16(v)
		}
		t, err := tensor.FromSlice(rounded, outDim, inDim)
		if err != nil {
			return nil, err
		}
		l.f32 = t
	case dtype.I8:
		q, scales, err := dtype.QuantizePerChannel(w, outDim, inDim)
		if err != nil {
			return nil, err
		}
		l.q, l.scales = q, scales
	default:
		return nil, fmt.Errorf("model: unsupported linear dtype %v", kind)
	}
	return l, nil
}

// Forward computes y = x·Wᵀ for x of shape tokens×InDim.
func (l *Linear) Forward(x *tensor.Tensor) (*tensor.Tensor, error) {
	if len(x.Shape) != 2 || x.Shape[1] != l.InDim {
		return nil, fmt.Errorf("model: linear expects ?x%d input, got %v", l.InDim, x.Shape)
	}
	switch l.Kind {
	case dtype.F32, dtype.BF16:
		return tensor.MatMulTransposed(x, l.f32)
	case dtype.I8:
		return l.forwardI8(x)
	default:
		return nil, fmt.Errorf("model: unsupported linear dtype %v", l.Kind)
	}
}

// forwardI8 quantizes each input row to int8 (dynamic activation
// quantization, as IPEX's int8 path does) and accumulates in int32 before
// applying the combined scales — the AMX tile-int8 execution pattern.
func (l *Linear) forwardI8(x *tensor.Tensor) (*tensor.Tensor, error) {
	tokens := x.Shape[0]
	out := tensor.New(tokens, l.OutDim)
	for t := 0; t < tokens; t++ {
		row := x.Row(t)
		qx, sx := dtype.QuantizeAbsmax(row)
		for o := 0; o < l.OutDim; o++ {
			wRow := l.q[o*l.InDim : (o+1)*l.InDim]
			var acc int32
			for i := range wRow {
				acc += int32(qx[i]) * int32(wRow[i])
			}
			out.Set(t, o, float32(acc)*sx*l.scales[o])
		}
	}
	return out, nil
}

// WeightBytes returns the resident weight footprint in bytes.
func (l *Linear) WeightBytes() int64 {
	n := int64(l.OutDim) * int64(l.InDim)
	switch l.Kind {
	case dtype.I8:
		return n + int64(len(l.scales))*4
	case dtype.BF16:
		return n * 2
	default:
		return n * 4
	}
}
