package model

import (
	"testing"
	"testing/quick"

	"cllm/internal/dtype"
)

func tinyConfig() Config {
	return Config{
		Name: "tiny", HiddenDim: 32, Layers: 2, Heads: 4, KVHeads: 2,
		FFDim: 64, VocabSize: 97, ContextLen: 64, NormEps: 1e-5, RopeTheta: 10000,
	}
}

func TestZooValidates(t *testing.T) {
	for name, cfg := range Zoo() {
		if err := cfg.Validate(); err != nil {
			t.Errorf("zoo model %s invalid: %v", name, err)
		}
	}
}

func TestZooParamCounts(t *testing.T) {
	// The configs must land near their advertised parameter counts.
	cases := map[string]struct{ lo, hi float64 }{
		"llama2-7b":  {6.5e9, 7.5e9},
		"llama2-13b": {12.0e9, 14.0e9},
		"llama2-70b": {64e9, 72e9},
		"llama3-8b":  {7.0e9, 9.0e9},
		"gptj-6b":    {5.0e9, 7.0e9},
		"falcon-7b":  {6.0e9, 9.0e9},
	}
	for name, want := range cases {
		cfg, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		p := float64(cfg.ParamCount())
		if p < want.lo || p > want.hi {
			t.Errorf("%s: ParamCount = %.2fB, want in [%.1fB, %.1fB]", name, p/1e9, want.lo/1e9, want.hi/1e9)
		}
	}
}

func TestLookupUnknown(t *testing.T) {
	if _, err := Lookup("gpt5"); err == nil {
		t.Error("Lookup(gpt5) succeeded")
	}
}

func TestKVCacheBytesFormula(t *testing.T) {
	cfg, _ := Lookup("llama2-7b")
	// 2 * 32 layers * 4096 kv width * 2 bytes (bf16) = 1 MiB per token.
	want := int64(2 * 32 * 4096 * 2)
	if got := cfg.KVCacheBytesPerToken(2); got != want {
		t.Errorf("KVCacheBytesPerToken = %d, want %d", got, want)
	}
	// GQA model must have a much smaller KV footprint.
	cfg70, _ := Lookup("llama2-70b")
	perLayer7 := cfg.KVCacheBytesPerToken(2) / int64(cfg.Layers)
	perLayer70 := cfg70.KVCacheBytesPerToken(2) / int64(cfg70.Layers)
	if perLayer70 >= perLayer7 {
		t.Errorf("GQA per-layer KV %d >= MHA %d", perLayer70, perLayer7)
	}
}

func TestScaledPreservesValidity(t *testing.T) {
	for name, cfg := range Zoo() {
		for _, f := range []int{2, 8, 64} {
			s := cfg.Scaled(f)
			if err := s.Validate(); err != nil {
				t.Errorf("%s scaled by %d invalid: %v", name, f, err)
			}
			if s.ParamCount() >= cfg.ParamCount() {
				t.Errorf("%s scaled by %d did not shrink", name, f)
			}
		}
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	bad := []Config{
		{Name: "b1", HiddenDim: 0, Layers: 1, Heads: 1, KVHeads: 1, FFDim: 1, VocabSize: 1, ContextLen: 1},
		{Name: "b2", HiddenDim: 30, Layers: 1, Heads: 4, KVHeads: 4, FFDim: 1, VocabSize: 1, ContextLen: 1},
		{Name: "b3", HiddenDim: 32, Layers: 1, Heads: 4, KVHeads: 3, FFDim: 1, VocabSize: 1, ContextLen: 1},
		{Name: "b4", HiddenDim: 12, Layers: 1, Heads: 4, KVHeads: 4, FFDim: 1, VocabSize: 1, ContextLen: 1}, // head dim 3, odd
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %s validated but should not", cfg.Name)
		}
	}
}

func TestForwardShapesAndDeterminism(t *testing.T) {
	for _, kind := range []dtype.Kind{dtype.F32, dtype.BF16, dtype.I8} {
		m, err := Build(tinyConfig(), kind, 42)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		cache := NewKVCache(m.Config)
		logits, err := m.Forward([]int{5, 6, 7}, cache)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if len(logits) != m.Config.VocabSize {
			t.Fatalf("%v: logits length %d, want %d", kind, len(logits), m.Config.VocabSize)
		}
		if cache.Len() != 3 {
			t.Fatalf("%v: cache length %d, want 3", kind, cache.Len())
		}
		// Same model, same input → identical logits.
		m2, err := Build(tinyConfig(), kind, 42)
		if err != nil {
			t.Fatal(err)
		}
		logits2, err := m2.Forward([]int{5, 6, 7}, NewKVCache(m2.Config))
		if err != nil {
			t.Fatal(err)
		}
		for i := range logits {
			if logits[i] != logits2[i] {
				t.Fatalf("%v: non-deterministic logits at %d", kind, i)
			}
		}
	}
}

func TestIncrementalForwardMatchesPrefill(t *testing.T) {
	// Feeding tokens one at a time through the KV cache must produce the
	// same final logits as one prefill pass — the cache-correctness
	// invariant the whole decode phase rests on.
	m, err := Build(tinyConfig(), dtype.F32, 7)
	if err != nil {
		t.Fatal(err)
	}
	tokens := []int{3, 14, 15, 92, 65}

	full := NewKVCache(m.Config)
	wantLogits, err := m.Forward(tokens, full)
	if err != nil {
		t.Fatal(err)
	}

	inc := NewKVCache(m.Config)
	var gotLogits []float32
	for _, tok := range tokens {
		gotLogits, err = m.Forward([]int{tok}, inc)
		if err != nil {
			t.Fatal(err)
		}
	}
	for i := range wantLogits {
		d := wantLogits[i] - gotLogits[i]
		if d > 1e-4 || d < -1e-4 {
			t.Fatalf("incremental logits[%d] = %g, prefill = %g", i, gotLogits[i], wantLogits[i])
		}
	}
}

func TestForwardErrors(t *testing.T) {
	m, err := Build(tinyConfig(), dtype.F32, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Forward(nil, NewKVCache(m.Config)); err == nil {
		t.Error("Forward(nil) succeeded")
	}
	if _, err := m.Forward([]int{4000}, NewKVCache(m.Config)); err == nil {
		t.Error("Forward with out-of-vocab token succeeded")
	}
	// Cache overflow.
	cache := NewKVCache(m.Config)
	big := make([]int, m.Config.ContextLen+1)
	if _, err := m.Forward(big, cache); err == nil {
		t.Error("Forward beyond context length succeeded")
	}
}

func TestGenerateGreedy(t *testing.T) {
	m, err := Build(tinyConfig(), dtype.F32, 11)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Generate([]int{5, 6}, GenOptions{MaxNewTokens: 8, StopToken: -1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tokens) != 8 {
		t.Fatalf("generated %d tokens, want 8", len(res.Tokens))
	}
	if res.PrefillTokens != 2 {
		t.Errorf("PrefillTokens = %d", res.PrefillTokens)
	}
	for _, tok := range res.Tokens {
		if tok < 0 || tok >= m.Config.VocabSize {
			t.Errorf("token %d out of vocab", tok)
		}
	}
}

func TestGenerateDeterministicAcrossDatatypeRebuild(t *testing.T) {
	m1, _ := Build(tinyConfig(), dtype.BF16, 5)
	m2, _ := Build(tinyConfig(), dtype.BF16, 5)
	r1, err := m1.Generate([]int{9, 8, 7}, GenOptions{MaxNewTokens: 6, StopToken: -1})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := m2.Generate([]int{9, 8, 7}, GenOptions{MaxNewTokens: 6, StopToken: -1})
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.Tokens {
		if r1.Tokens[i] != r2.Tokens[i] {
			t.Fatalf("generation not deterministic at %d", i)
		}
	}
}

func TestGenerateBeam(t *testing.T) {
	m, err := Build(tinyConfig(), dtype.F32, 13)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Generate([]int{5, 6}, GenOptions{MaxNewTokens: 5, BeamSize: 4, StopToken: -1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tokens) != 5 {
		t.Fatalf("beam generated %d tokens, want 5", len(res.Tokens))
	}
	// Beam search must never be worse than greedy in sequence log-prob; as a
	// cheap proxy we check it returns a valid, deterministic sequence.
	res2, err := m.Generate([]int{5, 6}, GenOptions{MaxNewTokens: 5, BeamSize: 4, StopToken: -1})
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Tokens {
		if res.Tokens[i] != res2.Tokens[i] {
			t.Fatal("beam search not deterministic")
		}
	}
}

func TestGenerateOptionErrors(t *testing.T) {
	m, _ := Build(tinyConfig(), dtype.F32, 1)
	if _, err := m.Generate(nil, GenOptions{MaxNewTokens: 1}); err == nil {
		t.Error("Generate with empty prompt succeeded")
	}
	if _, err := m.Generate([]int{1}, GenOptions{MaxNewTokens: 0}); err == nil {
		t.Error("Generate with zero MaxNewTokens succeeded")
	}
}

func TestInt8CloseToF32(t *testing.T) {
	// Per-channel int8 quantization should track the f32 model's argmax for
	// a clear-margin input most of the time. We check the generated token
	// streams agree on a majority of steps.
	cfgTiny := tinyConfig()
	mF, _ := Build(cfgTiny, dtype.F32, 21)
	mQ, _ := Build(cfgTiny, dtype.I8, 21)
	rF, err := mF.Generate([]int{10, 20, 30}, GenOptions{MaxNewTokens: 8, StopToken: -1})
	if err != nil {
		t.Fatal(err)
	}
	rQ, err := mQ.Generate([]int{10, 20, 30}, GenOptions{MaxNewTokens: 8, StopToken: -1})
	if err != nil {
		t.Fatal(err)
	}
	agree := 0
	for i := range rF.Tokens {
		if i < len(rQ.Tokens) && rF.Tokens[i] == rQ.Tokens[i] {
			agree++
		}
	}
	if agree < len(rF.Tokens)/2 {
		t.Errorf("int8 agrees with f32 on only %d/%d tokens", agree, len(rF.Tokens))
	}
}

func TestTokenizerDeterministicInVocab(t *testing.T) {
	tok := NewTokenizer(1000)
	a := tok.Encode("Hello, confidential world!")
	b := tok.Encode("Hello, confidential world!")
	if len(a) != len(b) {
		t.Fatal("encode not deterministic in length")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("encode not deterministic")
		}
		if a[i] < 0 || a[i] >= 1000 {
			t.Fatalf("token %d out of vocab", a[i])
		}
	}
	if a[0] != TokenBOS {
		t.Errorf("first token = %d, want BOS", a[0])
	}
}

func TestTokenizerPunctuationSplit(t *testing.T) {
	tok := NewTokenizer(1000)
	// "a,b" → BOS + "a" + "," + "b" = 4 tokens.
	if got := len(tok.Encode("a,b")); got != 4 {
		t.Errorf("Encode(a,b) = %d tokens, want 4", got)
	}
}

func TestEncodeNExactLength(t *testing.T) {
	tok := NewTokenizer(500)
	if err := quick.Check(func(n uint8) bool {
		want := int(n%200) + 1
		got := tok.EncodeN("some text to tokenize", want)
		return len(got) == want
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestKVCacheBytes(t *testing.T) {
	cfg := tinyConfig()
	c := NewKVCache(cfg)
	if c.Bytes(2) != 0 {
		t.Errorf("empty cache bytes = %d", c.Bytes(2))
	}
	m, _ := Build(cfg, dtype.F32, 2)
	if _, err := m.Forward([]int{1, 2, 3, 4}, c); err != nil {
		t.Fatal(err)
	}
	want := 2 * int64(cfg.Layers) * 4 * int64(cfg.KVDim()) * 2
	if got := c.Bytes(2); got != want {
		t.Errorf("cache bytes = %d, want %d", got, want)
	}
}

func BenchmarkTinyPrefill(b *testing.B) {
	m, err := Build(tinyConfig(), dtype.BF16, 3)
	if err != nil {
		b.Fatal(err)
	}
	tokens := make([]int, 16)
	for i := range tokens {
		tokens[i] = i + 1
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := m.Forward(tokens, NewKVCache(m.Config)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTinyDecodeToken(b *testing.B) {
	m, err := Build(tinyConfig(), dtype.BF16, 3)
	if err != nil {
		b.Fatal(err)
	}
	cache := NewKVCache(m.Config)
	if _, err := m.Forward([]int{1, 2, 3, 4}, cache); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		snapshot := cloneCache(cache)
		if _, err := m.Forward([]int{5}, snapshot); err != nil {
			b.Fatal(err)
		}
	}
}
