package model

import (
	"hash/fnv"
	"strings"
	"unicode"
)

// Tokenizer maps text to token IDs. It is a deterministic hashed word-piece
// scheme: real LLM tokenizers are proprietary artifacts, and inference
// performance depends only on token counts, not token identity, so a
// hash-bucket vocabulary preserves everything the experiments measure while
// letting the examples run on real text.
type Tokenizer struct {
	vocabSize int
}

// NewTokenizer returns a tokenizer for the given vocabulary size.
func NewTokenizer(vocabSize int) *Tokenizer {
	return &Tokenizer{vocabSize: vocabSize}
}

// reservedTokens is the number of low IDs kept for specials (BOS/EOS/PAD).
const reservedTokens = 3

// Special token IDs.
const (
	TokenBOS = 0
	TokenEOS = 1
	TokenPad = 2
)

// Encode splits text into word and punctuation tokens and hashes each into
// the vocabulary. A BOS token is prepended.
func (t *Tokenizer) Encode(text string) []int {
	words := splitWords(text)
	out := make([]int, 0, len(words)+1)
	out = append(out, TokenBOS)
	for _, w := range words {
		out = append(out, t.tokenID(w))
	}
	return out
}

// EncodeN returns exactly n tokens: text tokens truncated or padded with a
// deterministic filler derived from the position, matching the paper's
// fixed-input-length methodology (e.g. 1024-token prompts).
func (t *Tokenizer) EncodeN(text string, n int) []int {
	toks := t.Encode(text)
	if len(toks) >= n {
		return toks[:n]
	}
	for i := len(toks); i < n; i++ {
		toks = append(toks, t.tokenID("pad"+string(rune('a'+i%26))))
	}
	return toks
}

func (t *Tokenizer) tokenID(w string) int {
	h := fnv.New32a()
	h.Write([]byte(strings.ToLower(w)))
	space := t.vocabSize - reservedTokens
	if space <= 0 {
		return reservedTokens % t.vocabSize
	}
	return reservedTokens + int(h.Sum32()%uint32(space))
}

func splitWords(text string) []string {
	var words []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() > 0 {
			words = append(words, cur.String())
			cur.Reset()
		}
	}
	for _, r := range text {
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r):
			cur.WriteRune(r)
		case unicode.IsSpace(r):
			flush()
		default: // punctuation becomes its own token
			flush()
			words = append(words, string(r))
		}
	}
	flush()
	return words
}
