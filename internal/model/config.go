// Package model implements a Llama-family dense transformer: configuration
// zoo with the real architectural dimensions of the models the paper
// evaluates, deterministic synthetic weights, a forward pass with KV cache
// and grouped-query attention, and greedy/beam-search decoding.
//
// Models are instantiated at reduced hidden sizes for functional tests and
// examples; the full-size configurations feed the analytical workload trace
// (internal/trace) used by the performance model.
package model

import (
	"fmt"
	"sort"
)

// Config describes a dense decoder-only transformer architecture.
type Config struct {
	// Name is the model identifier, e.g. "llama2-7b".
	Name string
	// HiddenDim is the model (embedding) dimension.
	HiddenDim int
	// Layers is the number of decoder blocks.
	Layers int
	// Heads is the number of attention (query) heads.
	Heads int
	// KVHeads is the number of key/value heads; Heads for MHA, fewer for GQA.
	KVHeads int
	// FFDim is the MLP intermediate dimension.
	FFDim int
	// VocabSize is the tokenizer vocabulary size.
	VocabSize int
	// ContextLen is the maximum supported sequence length.
	ContextLen int
	// NormEps is the RMSNorm epsilon.
	NormEps float32
	// RopeTheta is the rotary embedding base frequency.
	RopeTheta float64
}

// HeadDim returns the per-head dimension.
func (c Config) HeadDim() int { return c.HiddenDim / c.Heads }

// KVDim returns the total key/value projection width.
func (c Config) KVDim() int { return c.KVHeads * c.HeadDim() }

// Validate reports configuration inconsistencies.
func (c Config) Validate() error {
	switch {
	case c.HiddenDim <= 0 || c.Layers <= 0 || c.Heads <= 0 || c.KVHeads <= 0:
		return fmt.Errorf("model %s: non-positive dimension", c.Name)
	case c.HiddenDim%c.Heads != 0:
		return fmt.Errorf("model %s: hidden %d not divisible by %d heads", c.Name, c.HiddenDim, c.Heads)
	case c.Heads%c.KVHeads != 0:
		return fmt.Errorf("model %s: %d heads not divisible by %d KV heads", c.Name, c.Heads, c.KVHeads)
	case c.HeadDim()%2 != 0:
		return fmt.Errorf("model %s: head dim %d must be even for RoPE", c.Name, c.HeadDim())
	case c.FFDim <= 0 || c.VocabSize <= 0 || c.ContextLen <= 0:
		return fmt.Errorf("model %s: non-positive FF/vocab/context", c.Name)
	}
	return nil
}

// ParamCount returns the total number of weights (embeddings + blocks + head).
func (c Config) ParamCount() int64 {
	h, f, v := int64(c.HiddenDim), int64(c.FFDim), int64(c.VocabSize)
	kv := int64(c.KVDim())
	perLayer := h*h + // Wq
		2*h*kv + // Wk, Wv
		h*h + // Wo
		3*h*f + // W1 (gate), W3 (up), W2 (down)
		2*h // two RMSNorm gains
	return v*h + // token embeddings
		int64(c.Layers)*perLayer +
		h + // final norm
		h*v // LM head
}

// WeightBytes returns the resident size of the weights at the given element
// size (e.g. 2 for bf16, 1 for int8).
func (c Config) WeightBytes(elemSize int) int64 {
	return c.ParamCount() * int64(elemSize)
}

// KVCacheBytesPerToken returns the KV cache growth per generated token per
// sequence: 2 (K and V) × layers × KV width × element size.
func (c Config) KVCacheBytesPerToken(elemSize int) int64 {
	return 2 * int64(c.Layers) * int64(c.KVDim()) * int64(elemSize)
}

// Zoo returns the paper's model configurations, keyed by name.
// Dimensions follow the published architectures.
func Zoo() map[string]Config {
	zoo := map[string]Config{
		"llama2-7b": {
			Name: "llama2-7b", HiddenDim: 4096, Layers: 32, Heads: 32, KVHeads: 32,
			FFDim: 11008, VocabSize: 32000, ContextLen: 4096, NormEps: 1e-5, RopeTheta: 10000,
		},
		"llama2-13b": {
			Name: "llama2-13b", HiddenDim: 5120, Layers: 40, Heads: 40, KVHeads: 40,
			FFDim: 13824, VocabSize: 32000, ContextLen: 4096, NormEps: 1e-5, RopeTheta: 10000,
		},
		"llama2-70b": {
			Name: "llama2-70b", HiddenDim: 8192, Layers: 80, Heads: 64, KVHeads: 8,
			FFDim: 28672, VocabSize: 32000, ContextLen: 4096, NormEps: 1e-5, RopeTheta: 10000,
		},
		"llama3-8b": {
			Name: "llama3-8b", HiddenDim: 4096, Layers: 32, Heads: 32, KVHeads: 8,
			FFDim: 14336, VocabSize: 128256, ContextLen: 8192, NormEps: 1e-5, RopeTheta: 500000,
		},
		// GPT-J and Falcon use un-gated 4h MLPs; we express them as gated
		// MLPs with a matched parameter count (FFDim = 8h/3) so the shared
		// decoder keeps their compute and memory footprints faithful.
		"gptj-6b": {
			Name: "gptj-6b", HiddenDim: 4096, Layers: 28, Heads: 16, KVHeads: 16,
			FFDim: 10912, VocabSize: 50400, ContextLen: 2048, NormEps: 1e-5, RopeTheta: 10000,
		},
		"falcon-7b": { // Falcon-7B uses multi-query attention (one KV head).
			Name: "falcon-7b", HiddenDim: 4544, Layers: 32, Heads: 71, KVHeads: 1,
			FFDim: 12112, VocabSize: 65024, ContextLen: 2048, NormEps: 1e-5, RopeTheta: 10000,
		},
		"baichuan2-7b": {
			Name: "baichuan2-7b", HiddenDim: 4096, Layers: 32, Heads: 32, KVHeads: 32,
			FFDim: 11008, VocabSize: 125696, ContextLen: 4096, NormEps: 1e-6, RopeTheta: 10000,
		},
		"qwen-7b": {
			Name: "qwen-7b", HiddenDim: 4096, Layers: 32, Heads: 32, KVHeads: 32,
			FFDim: 11008, VocabSize: 151936, ContextLen: 8192, NormEps: 1e-6, RopeTheta: 10000,
		},
		"sbert-mini": { // SBERT-class encoder used by the RAG pipeline (Fig 14).
			Name: "sbert-mini", HiddenDim: 384, Layers: 6, Heads: 12, KVHeads: 12,
			FFDim: 1536, VocabSize: 30522, ContextLen: 512, NormEps: 1e-6, RopeTheta: 10000,
		},
	}
	return zoo
}

// Lookup returns the named config from the zoo.
func Lookup(name string) (Config, error) {
	cfg, ok := Zoo()[name]
	if !ok {
		names := make([]string, 0)
		for n := range Zoo() {
			names = append(names, n)
		}
		sort.Strings(names)
		return Config{}, fmt.Errorf("model: unknown model %q (have %v)", name, names)
	}
	return cfg, nil
}

// Scaled returns a copy of the config shrunk by factor for functional runs:
// hidden, FF and vocab dimensions divide by factor while the layer count and
// head structure (and therefore the operator graph) are preserved as much as
// possible. Used by tests and examples that perform real arithmetic.
func (c Config) Scaled(factor int) Config {
	if factor <= 1 {
		return c
	}
	s := c
	s.Name = fmt.Sprintf("%s/x%d", c.Name, factor)
	s.HiddenDim = maxInt(c.HiddenDim/factor, 2*c.Heads)
	// Keep head structure; shrink head dim with hidden dim.
	for s.HiddenDim%s.Heads != 0 || (s.HiddenDim/s.Heads)%2 != 0 {
		s.HiddenDim++
	}
	s.FFDim = maxInt(c.FFDim/factor, 8)
	s.VocabSize = maxInt(c.VocabSize/factor, 64)
	s.Layers = maxInt(c.Layers/factor, 2)
	s.ContextLen = minInt(c.ContextLen, 512)
	return s
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
