// Package tee models the trusted execution environments the paper
// evaluates. Each Platform bundles the mechanism parameters the performance
// engine consumes: compute tax (virtualization), memory-encryption bandwidth
// factors, page-walk amplification and effective page policy, NUMA placement
// behaviour, enclave-exit costs (SGX/Gramine), EPC limits, and — for GPUs —
// launch-latency and PCIe bounce-buffer costs. It also implements the
// attestation flow users run before provisioning secrets into an enclave.
package tee

import (
	"fmt"

	"cllm/internal/gramine"
	"cllm/internal/hw"
	"cllm/internal/mem"
)

// Class is the broad TEE category, as in the paper's Table I columns.
type Class int

const (
	// ClassNone is an unprotected baseline (bare metal or plain VM/GPU).
	ClassNone Class = iota
	// ClassProcess is a process/enclave TEE (SGX).
	ClassProcess
	// ClassVM is a confidential-VM TEE (TDX, SEV-SNP).
	ClassVM
	// ClassGPU is a GPU TEE (H100 CC).
	ClassGPU
)

// Platform carries everything the performance engine needs to cost a
// workload on one hardware/TEE combination.
type Platform struct {
	// Name as used in the paper's plots: baremetal, VM, TDX, SGX, GPU, cGPU.
	Name string
	// Class of protection.
	Class Class
	// Protected reports whether this platform provides TEE guarantees
	// (drives the extra noise/outlier model and the security matrix).
	Protected bool

	// --- CPU-side mechanisms ---

	// ComputeTax is the fractional compute slowdown (virtualization).
	ComputeTax float64
	// MemBWFactor scales DRAM bandwidth (memory encryption engines).
	MemBWFactor float64
	// PageWalkAmp multiplies TLB-miss cost (nested/secure EPT).
	PageWalkAmp float64
	// Pages is the page policy actually in effect.
	Pages mem.PagePolicy
	// NUMA is the placement policy the platform achieves.
	NUMA mem.NUMAPolicy
	// UPIEncrypted applies the cross-socket link crypto penalty.
	UPIEncrypted bool
	// ExitCostSec and ExitsPerToken model Gramine enclave exits.
	ExitCostSec   float64
	ExitsPerToken float64
	// EPC is the SGX enclave page cache (zero Size = unlimited).
	EPC mem.EPC
	// PerOpCostSec is a fixed cost added to every operator under a TEE
	// (encryption-pipeline fill on small ops — why layer norms show the
	// paper's largest relative overheads, Fig 7).
	PerOpCostSec float64

	// --- GPU-side mechanisms ---

	// KernelLaunchExtraSec is added to every kernel launch (encrypted
	// command buffers on cGPU).
	KernelLaunchExtraSec float64
	// StepExtraSec is a fixed per-step confidential-compute cost on GPUs
	// (bounce-buffer doorbells, encrypted synchronization).
	StepExtraSec float64
	// PCIeBWFactor scales host-GPU transfer bandwidth (bounce buffer).
	PCIeBWFactor float64
	// HBMEncrypted is false on H100 (a Table I security gap, not a cost).
	HBMEncrypted bool
	// NVLinkProtected is false on H100 (scale-up must route via host).
	NVLinkProtected bool
}

// Baremetal returns the unprotected bare-metal baseline.
func Baremetal() Platform {
	return Platform{
		Name:         "baremetal",
		Class:        ClassNone,
		MemBWFactor:  1,
		PageWalkAmp:  1,
		Pages:        mem.PolicyTransparentHuge,
		NUMA:         mem.NUMABound,
		PCIeBWFactor: 1,
	}
}

// VMVariant selects the paper's VM configurations.
type VMVariant int

const (
	// VMFullHuge is a VM backed by preallocated 1G hugepages (VM FH).
	VMFullHuge VMVariant = iota
	// VMTransparentHuge uses 2M transparent hugepages (VM TH).
	VMTransparentHuge
	// VMNoBinding drops NUMA bindings (VM NB).
	VMNoBinding
)

// VM returns an unprotected KVM guest in the given variant.
func VM(v VMVariant) Platform {
	p := Platform{
		Name:         "VM",
		Class:        ClassNone,
		ComputeTax:   hw.VMComputeTax,
		MemBWFactor:  1,
		PageWalkAmp:  hw.VMPageWalkAmplification,
		Pages:        mem.PolicyFullHuge,
		NUMA:         mem.NUMABound,
		PCIeBWFactor: 1,
	}
	switch v {
	case VMTransparentHuge:
		p.Name = "VM-TH"
		p.Pages = mem.PolicyTransparentHuge
	case VMNoBinding:
		p.Name = "VM-NB"
		p.Pages = mem.PolicyTransparentHuge
		p.NUMA = mem.NUMAUnbound
	default:
		p.Name = "VM-FH"
	}
	return p
}

// TDX returns the Intel TDX confidential VM: VM mechanics plus secure-EPT
// walks, the memory-encryption engine, forced 2M transparent hugepages
// (Insight 7), broken NUMA bindings (Insight 6) and encrypted UPI.
func TDX() Platform {
	return Platform{
		Name:         "TDX",
		Class:        ClassVM,
		Protected:    true,
		ComputeTax:   hw.VMComputeTax,
		MemBWFactor:  hw.MemEncryptBWFactor,
		PageWalkAmp:  hw.TDXPageWalkAmplification,
		Pages:        mem.PolicyTDX,
		NUMA:         mem.NUMABrokenTDX,
		UPIEncrypted: true,
		PerOpCostSec: 2.0e-6,
		PCIeBWFactor: 1,
	}
}

// SGX returns the Gramine-on-SGX process TEE configured by the manifest.
// It runs on bare metal (no virtualization tax) but pays EPC protection,
// enclave exits, single-node NUMA presentation and encrypted UPI.
func SGX(m *gramine.Manifest) (Platform, error) {
	if m == nil {
		return Platform{}, fmt.Errorf("tee: SGX requires a manifest")
	}
	if err := m.Validate(); err != nil {
		return Platform{}, err
	}
	exits := float64(hw.SGXExitsPerToken)
	// The measured per-token exit rate scales with the OCALL share of the
	// libOS syscall profile.
	prof := gramine.Profile(gramine.InferenceLoopSyscalls())
	if prof.Total > 0 {
		exits = float64(hw.SGXExitsPerToken) * float64(prof.Exits) / float64(prof.Total) * 3
	}
	return Platform{
		Name:          "SGX",
		Class:         ClassProcess,
		Protected:     true,
		MemBWFactor:   hw.SGXEPCBWFactor,
		PageWalkAmp:   1,
		Pages:         mem.PolicyTransparentHuge,
		NUMA:          mem.NUMASingleNodeSGX,
		UPIEncrypted:  true,
		ExitCostSec:   hw.SGXExitCostSec,
		ExitsPerToken: exits,
		EPC:           mem.EPC{Size: m.EnclaveSize, PageInCostFactor: mem.DefaultEPC().PageInCostFactor},
		PerOpCostSec:  1.5e-6,
		PCIeBWFactor:  1,
	}, nil
}

// GPU returns the unprotected H100 runtime.
func GPU() Platform {
	return Platform{
		Name:            "GPU",
		Class:           ClassNone,
		MemBWFactor:     1,
		PageWalkAmp:     1,
		Pages:           mem.PolicyTransparentHuge,
		NUMA:            mem.NUMABound,
		PCIeBWFactor:    1,
		HBMEncrypted:    false,
		NVLinkProtected: false,
	}
}

// CGPU returns the H100 confidential-compute mode: encrypted/authenticated
// PCIe bounce buffers and costlier kernel launches; HBM stays unencrypted
// and NVLink unprotected (the paper's §V-A security caveats).
func CGPU() Platform {
	return Platform{
		Name:                 "cGPU",
		Class:                ClassGPU,
		Protected:            true,
		MemBWFactor:          1, // no HBM encryption on H100
		PageWalkAmp:          1,
		Pages:                mem.PolicyTransparentHuge,
		NUMA:                 mem.NUMABound,
		KernelLaunchExtraSec: hw.CGPULaunchExtraSec,
		StepExtraSec:         hw.CGPUStepExtraSec,
		PCIeBWFactor:         hw.CGPUPCIeBWFactor,
		HBMEncrypted:         false,
		NVLinkProtected:      false,
	}
}

// Clear returns the platform's clear-hardware twin: the same machine with
// every TEE mechanism neutralized — no memory-encryption bandwidth factor,
// no secure-EPT walk amplification, no enclave exits or EPC ceiling, no
// per-op encryption-pipeline cost, no AES-GCM bounce buffer or encrypted
// launch path. Non-TEE mechanics survive: a confidential VM's twin is a
// plain VM (virtualization compute tax and nested-EPT walks stay), SGX's
// twin is bare metal, cGPU's twin is the plain GPU runtime. The
// counterfactual step coster behind latency attribution prices rounds on
// the twin; the per-step delta against the real platform is the TEE tax.
// Unprotected platforms are their own twin.
func (p Platform) Clear() Platform {
	if !p.Protected {
		return p
	}
	c := p
	c.Name = p.Name + "-clear"
	c.Protected = false
	c.MemBWFactor = 1
	c.UPIEncrypted = false
	c.ExitCostSec = 0
	c.ExitsPerToken = 0
	c.EPC = mem.EPC{}
	c.PerOpCostSec = 0
	c.KernelLaunchExtraSec = 0
	c.StepExtraSec = 0
	c.PCIeBWFactor = 1
	switch p.Class {
	case ClassVM:
		// Secure-EPT's extra walk cost, the forced page policy and the
		// broken NUMA bindings are TEE artifacts; plain-VM nested paging,
		// transparent hugepages and working NUMA bindings come back.
		c.PageWalkAmp = hw.VMPageWalkAmplification
		c.Pages = mem.PolicyTransparentHuge
		c.NUMA = mem.NUMABound
	case ClassProcess:
		// SGX runs on bare metal; without the enclave the single-node NUMA
		// presentation goes away too.
		c.PageWalkAmp = 1
		c.NUMA = mem.NUMABound
	}
	c.Class = ClassNone
	return c
}

// WithSNC returns a copy of the platform running with sub-NUMA clustering
// enabled, which TEE drivers mishandle (§IV-A.1: ~5% → ~42% overhead).
func (p Platform) WithSNC() Platform {
	if p.Protected && (p.Class == ClassVM || p.Class == ClassProcess) {
		p.NUMA = mem.NUMASubNUMAMisplaced
		p.Name += "+SNC"
	}
	return p
}

// WithNUMA overrides the placement policy (for Fig 5's VM B / VM NB pair).
func (p Platform) WithNUMA(n mem.NUMAPolicy) Platform {
	p.NUMA = n
	return p
}

// UPIFactor returns the cross-socket bandwidth multiplier.
func (p Platform) UPIFactor() float64 {
	if p.UPIEncrypted {
		return hw.UPIEncryptBWFactor
	}
	return 1
}

// SwapBWFactor returns the bandwidth multiplier KV swap-to-host traffic
// pays on this platform. On GPUs the transfer crosses PCIe, so cGPU pays
// the AES-GCM bounce-buffer factor the paper measures for host transfers
// (§V-D.4); on CPUs the swap is a DRAM-to-DRAM memcpy that stays behind
// the inline memory-encryption engine, so TDX/SGX swap at near-native
// speed (MemBWFactor) — exactly the asymmetry that makes swap-vs-recompute
// a per-TEE trade-off rather than a fixed rule.
func (p Platform) SwapBWFactor(isGPU bool) float64 {
	if isGPU {
		return p.PCIeBWFactor
	}
	return p.MemBWFactor
}
