package tee

import (
	"bytes"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"time"
)

// Attestation: before provisioning model weights or prompts into an
// enclave, the user verifies a hardware-signed quote binding the enclave
// measurement (MRENCLAVE-like), the platform's security version, and a
// user-supplied nonce. This file implements the software equivalent with an
// HMAC standing in for the platform's EPID/ECDSA signing key, preserving
// the protocol structure: measure → quote → verify → provision.

// Cold-start provisioning costs. A confidential replica is not servable
// the moment the instance boots: the TEE must prepare its protected memory
// image and the relying party must complete the attestation round-trip
// before weights (secrets) are provisioned. These constants parameterize
// the autoscaling simulator's per-class cold starts — the elasticity tax
// non-confidential fleets do not pay.
const (
	// BaseBootSec is process/guest boot to runtime-ready, TEE work
	// excluded (kernel + runtime + framework import).
	BaseBootSec = 2.0
	// WeightLoadBytesPerSec streams the weight image from local NVMe or
	// page cache into host memory.
	WeightLoadBytesPerSec = 2.5e9
	// TDXAcceptBytesPerSec is TD private-memory conversion throughput
	// (TDH.MEM.PAGE.AUG + TDG.MEM.PAGE.ACCEPT): every page backing the
	// weights must be accepted before first use.
	TDXAcceptBytesPerSec = 3e9
	// AttestationRTTSec is the measure→quote→verify→key-release round-trip
	// (quote generation, transport to the verification service, policy
	// evaluation, secret provisioning) a protected replica completes
	// before serving its first request.
	AttestationRTTSec = 1.5
)

// Measurement is the enclave/TD identity hash.
type Measurement [32]byte

// Measure hashes the code and configuration loaded into the TEE.
func Measure(code, config []byte) Measurement {
	h := sha256.New()
	h.Write([]byte("tee-measurement:"))
	var lenBuf [8]byte
	binary.BigEndian.PutUint64(lenBuf[:], uint64(len(code)))
	h.Write(lenBuf[:])
	h.Write(code)
	h.Write(config)
	var m Measurement
	copy(m[:], h.Sum(nil))
	return m
}

// Quote is the signed attestation evidence.
type Quote struct {
	Measurement Measurement
	// SVN is the platform security version number.
	SVN uint16
	// Nonce echoes the verifier's challenge (freshness).
	Nonce [16]byte
	// Debug marks debug enclaves, which verifiers must reject in production.
	Debug bool
	// Timestamp of quote generation.
	Timestamp time.Time
	// Signature over all the above, by the platform key.
	Signature [32]byte
}

// PlatformKey is the hardware signing secret (fused into real silicon).
type PlatformKey [32]byte

// GenerateQuote signs the evidence with the platform key.
func GenerateQuote(key PlatformKey, m Measurement, svn uint16, nonce [16]byte, debug bool, now time.Time) Quote {
	q := Quote{Measurement: m, SVN: svn, Nonce: nonce, Debug: debug, Timestamp: now}
	q.Signature = signQuote(key, q)
	return q
}

func signQuote(key PlatformKey, q Quote) [32]byte {
	h := hmac.New(sha256.New, key[:])
	h.Write(q.Measurement[:])
	var svn [2]byte
	binary.BigEndian.PutUint16(svn[:], q.SVN)
	h.Write(svn[:])
	h.Write(q.Nonce[:])
	if q.Debug {
		h.Write([]byte{1})
	} else {
		h.Write([]byte{0})
	}
	var ts [8]byte
	binary.BigEndian.PutUint64(ts[:], uint64(q.Timestamp.UnixNano()))
	h.Write(ts[:])
	var sig [32]byte
	copy(sig[:], h.Sum(nil))
	return sig
}

// VerifyPolicy is what the relying party requires of a quote.
type VerifyPolicy struct {
	// Expected enclave measurement (the build the user audited).
	Expected Measurement
	// MinSVN rejects platforms with stale microcode.
	MinSVN uint16
	// Nonce must match the challenge issued for this session.
	Nonce [16]byte
	// MaxAge bounds quote staleness.
	MaxAge time.Duration
	// Now is the verification time.
	Now time.Time
}

// VerifyQuote checks a quote against the policy and the platform key
// (obtained via the vendor's provisioning certification service).
func VerifyQuote(key PlatformKey, q Quote, pol VerifyPolicy) error {
	want := signQuote(key, q)
	if !hmac.Equal(want[:], q.Signature[:]) {
		return fmt.Errorf("tee: quote signature invalid")
	}
	if !bytes.Equal(q.Measurement[:], pol.Expected[:]) {
		return fmt.Errorf("tee: measurement mismatch: enclave is not the audited build")
	}
	if q.SVN < pol.MinSVN {
		return fmt.Errorf("tee: platform SVN %d below required %d", q.SVN, pol.MinSVN)
	}
	if q.Nonce != pol.Nonce {
		return fmt.Errorf("tee: nonce mismatch (replayed quote?)")
	}
	if q.Debug {
		return fmt.Errorf("tee: debug enclave rejected in production")
	}
	if pol.MaxAge > 0 && pol.Now.Sub(q.Timestamp) > pol.MaxAge {
		return fmt.Errorf("tee: quote older than %v", pol.MaxAge)
	}
	return nil
}
