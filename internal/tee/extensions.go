package tee

import (
	"cllm/internal/hw"
	"cllm/internal/mem"
)

// Extension platforms: TEEs the paper discusses but could not measure.
// SEV-SNP is cited as having "similar security mechanisms to Intel's TDX,
// resulting in close benchmark overheads" [Misono et al.]; B100 is NVIDIA's
// successor that encrypts HBM and protects NVLink, which the paper expects
// to add a non-negligible overhead on top of the H100's results (§V-A,
// §V-D.3). Both are provided as *projections* built from the same
// mechanisms, clearly named as such.

// SEVSNP returns an AMD SEV-SNP confidential VM. Mechanism differences from
// TDX: the RMP (reverse map table) check on nested walks is slightly
// cheaper than TDX's secure-EPT integrity verification, SME's memory
// encryption is marginally costlier per line, and the guest honours NUMA
// bindings better than the TDX KVM driver of the paper's snapshot.
func SEVSNP() Platform {
	return Platform{
		Name:         "SEV-SNP",
		Class:        ClassVM,
		Protected:    true,
		ComputeTax:   hw.VMComputeTax,
		MemBWFactor:  hw.SEVMemEncryptBWFactor,
		PageWalkAmp:  hw.SEVPageWalkAmplification,
		Pages:        mem.PolicyTransparentHuge, // SEV also lacks 1G guest pages
		NUMA:         mem.NUMABound,
		UPIEncrypted: true, // xGMI link encryption
		PerOpCostSec: 2.0e-6,
		PCIeBWFactor: 1,
	}
}

// B100CC returns the projected Blackwell confidential GPU: HBM encryption
// and NVLink protection close the H100's security gaps at a memory-path
// cost the paper anticipates from its CPU findings ("we identified memory
// encryption as a significant cost in CPUs").
func B100CC() Platform {
	return Platform{
		Name:                 "cB100 (projected)",
		Class:                ClassGPU,
		Protected:            true,
		MemBWFactor:          hw.B100HBMEncryptBWFactor, // HBM encryption engine
		PageWalkAmp:          1,
		Pages:                mem.PolicyTransparentHuge,
		NUMA:                 mem.NUMABound,
		KernelLaunchExtraSec: hw.CGPULaunchExtraSec, // command buffers still protected
		StepExtraSec:         hw.CGPUStepExtraSec,
		PCIeBWFactor:         hw.B100PCIeBWFactor, // TDISP/IDE removes the bounce buffer
		HBMEncrypted:         true,
		NVLinkProtected:      true,
	}
}

// B100 returns the unprotected Blackwell baseline used to compute the
// projected CC overhead (same silicon, CC off).
func B100() Platform {
	p := GPU()
	p.Name = "B100"
	return p
}
