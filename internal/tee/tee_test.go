package tee

import (
	"testing"
	"time"

	"cllm/internal/gramine"
	"cllm/internal/hw"
	"cllm/internal/mem"
)

func TestPlatformBaselines(t *testing.T) {
	bm := Baremetal()
	if bm.Protected || bm.ComputeTax != 0 || bm.MemBWFactor != 1 {
		t.Errorf("baremetal not clean: %+v", bm)
	}
	gpu := GPU()
	if gpu.Protected || gpu.KernelLaunchExtraSec != 0 {
		t.Errorf("GPU baseline not clean: %+v", gpu)
	}
}

func TestVMVariants(t *testing.T) {
	fh := VM(VMFullHuge)
	th := VM(VMTransparentHuge)
	nb := VM(VMNoBinding)
	if fh.Pages.Effective != mem.Page1G {
		t.Error("VM FH not on 1G pages")
	}
	if th.Pages.Effective != mem.Page2M {
		t.Error("VM TH not on 2M pages")
	}
	if nb.NUMA != mem.NUMAUnbound {
		t.Error("VM NB has bindings")
	}
	for _, p := range []Platform{fh, th, nb} {
		if p.Protected {
			t.Errorf("%s is marked protected", p.Name)
		}
		if p.ComputeTax <= 0 {
			t.Errorf("%s has no virtualization tax", p.Name)
		}
	}
}

func TestTDXMechanisms(t *testing.T) {
	tdx := TDX()
	if !tdx.Protected || tdx.Class != ClassVM {
		t.Error("TDX not a protected VM TEE")
	}
	// Insight 7: TDX requests 1G but walks 2M.
	if tdx.Pages.Requested != mem.Page1G || tdx.Pages.Effective != mem.Page2M {
		t.Errorf("TDX pages = %+v", tdx.Pages)
	}
	// Insight 6: broken bindings.
	if tdx.NUMA != mem.NUMABrokenTDX {
		t.Error("TDX NUMA not broken-binding")
	}
	if tdx.MemBWFactor >= 1 {
		t.Error("TDX has no memory-encryption cost")
	}
	if !tdx.UPIEncrypted {
		t.Error("TDX UPI not encrypted")
	}
	if tdx.PageWalkAmp <= VM(VMFullHuge).PageWalkAmp {
		t.Error("TDX secure-EPT walk not costlier than plain EPT")
	}
}

func TestSGXFromManifest(t *testing.T) {
	m := gramine.DefaultManifest("/models/w.bin", 64<<30, 32)
	sgx, err := SGX(m)
	if err != nil {
		t.Fatal(err)
	}
	if !sgx.Protected || sgx.Class != ClassProcess {
		t.Error("SGX not a protected process TEE")
	}
	// SGX runs on bare metal: no virtualization tax, native walks.
	if sgx.ComputeTax != 0 || sgx.PageWalkAmp != 1 {
		t.Errorf("SGX pays virtualization costs: %+v", sgx)
	}
	if sgx.ExitsPerToken <= 0 || sgx.ExitCostSec <= 0 {
		t.Error("SGX has no enclave-exit cost")
	}
	if sgx.EPC.Size != 64<<30 {
		t.Errorf("EPC size = %d", sgx.EPC.Size)
	}
	if sgx.NUMA != mem.NUMASingleNodeSGX {
		t.Error("SGX NUMA not single-node")
	}
	if _, err := SGX(nil); err == nil {
		t.Error("SGX(nil) succeeded")
	}
	bad := &gramine.Manifest{}
	if _, err := SGX(bad); err == nil {
		t.Error("SGX with invalid manifest succeeded")
	}
}

func TestCGPUMechanisms(t *testing.T) {
	c := CGPU()
	if !c.Protected || c.Class != ClassGPU {
		t.Error("cGPU not protected GPU class")
	}
	if c.KernelLaunchExtraSec <= 0 {
		t.Error("cGPU has no launch cost")
	}
	if c.PCIeBWFactor >= 1 {
		t.Error("cGPU PCIe not degraded")
	}
	// The paper's security caveats: HBM unencrypted, NVLink unprotected.
	if c.HBMEncrypted || c.NVLinkProtected {
		t.Error("cGPU claims protections H100 does not have")
	}
	// No memory-encryption cost on the HBM path (Fig 11's low noise).
	if c.MemBWFactor != 1 {
		t.Error("cGPU HBM bandwidth degraded but H100 does not encrypt HBM")
	}
}

func TestClearTwins(t *testing.T) {
	// cGPU's twin is exactly the plain GPU runtime, mechanism for
	// mechanism — only the name differs (this is what makes the
	// clear-baseline coster byte-identical to costing on GPU()).
	cg := CGPU().Clear()
	want := GPU()
	want.Name = "cGPU-clear"
	if cg != want {
		t.Errorf("CGPU().Clear() = %+v, want GPU mechanics %+v", cg, want)
	}

	// TDX's twin is a plain VM: virtualization survives, TEE costs do not.
	td := TDX().Clear()
	if td.Protected || td.Class != ClassNone {
		t.Errorf("TDX twin still protected: %+v", td)
	}
	if td.ComputeTax != hw.VMComputeTax {
		t.Error("TDX twin lost the virtualization compute tax")
	}
	if td.MemBWFactor != 1 || td.UPIEncrypted || td.PerOpCostSec != 0 {
		t.Errorf("TDX twin still pays encryption costs: %+v", td)
	}
	if td.PageWalkAmp != hw.VMPageWalkAmplification {
		t.Error("TDX twin does not walk like a plain VM")
	}
	if td.NUMA != mem.NUMABound || td.Pages != mem.PolicyTransparentHuge {
		t.Errorf("TDX twin memory placement not plain-VM: %+v", td)
	}

	// SGX's twin is bare metal: no exits, no EPC ceiling, native NUMA.
	m := gramine.DefaultManifest("/models/w.bin", 64<<30, 32)
	sgx, err := SGX(m)
	if err != nil {
		t.Fatal(err)
	}
	sc := sgx.Clear()
	if sc.ExitCostSec != 0 || sc.ExitsPerToken != 0 {
		t.Error("SGX twin still pays enclave exits")
	}
	if sc.EPC.Size != 0 {
		t.Error("SGX twin still has an EPC ceiling")
	}
	if sc.MemBWFactor != 1 || sc.NUMA != mem.NUMABound || sc.PerOpCostSec != 0 {
		t.Errorf("SGX twin not bare-metal-like: %+v", sc)
	}

	// Unprotected platforms are their own twin, unchanged.
	for _, p := range []Platform{Baremetal(), VM(VMTransparentHuge), GPU()} {
		if p.Clear() != p {
			t.Errorf("%s twin differs from itself", p.Name)
		}
	}
}

func TestWithSNC(t *testing.T) {
	tdx := TDX().WithSNC()
	if tdx.NUMA != mem.NUMASubNUMAMisplaced {
		t.Error("SNC did not misplace TDX memory")
	}
	// SNC does not affect unprotected platforms' placement in this model.
	bm := Baremetal().WithSNC()
	if bm.NUMA != mem.NUMABound {
		t.Error("SNC changed bare metal placement")
	}
}

func TestUPIFactor(t *testing.T) {
	if TDX().UPIFactor() >= 1 {
		t.Error("encrypted UPI at full bandwidth")
	}
	if Baremetal().UPIFactor() != 1 {
		t.Error("baremetal UPI degraded")
	}
}

func TestAttestationRoundTrip(t *testing.T) {
	var key PlatformKey
	copy(key[:], "platform-fuse-key-0123456789abcd")
	m := Measure([]byte("enclave code"), []byte("manifest"))
	var nonce [16]byte
	copy(nonce[:], "fresh-nonce-1234")
	now := time.Unix(1700000000, 0)
	q := GenerateQuote(key, m, 3, nonce, false, now)
	pol := VerifyPolicy{Expected: m, MinSVN: 2, Nonce: nonce, MaxAge: time.Hour, Now: now.Add(time.Minute)}
	if err := VerifyQuote(key, q, pol); err != nil {
		t.Fatalf("valid quote rejected: %v", err)
	}
}

func TestAttestationRejections(t *testing.T) {
	var key PlatformKey
	copy(key[:], "platform-fuse-key-0123456789abcd")
	m := Measure([]byte("code"), []byte("cfg"))
	var nonce [16]byte
	copy(nonce[:], "nonce-aaaa-bbbb-")
	now := time.Unix(1700000000, 0)
	good := GenerateQuote(key, m, 3, nonce, false, now)
	basePol := VerifyPolicy{Expected: m, MinSVN: 2, Nonce: nonce, MaxAge: time.Hour, Now: now}

	// Tampered signature.
	bad := good
	bad.Signature[0] ^= 1
	if err := VerifyQuote(key, bad, basePol); err == nil {
		t.Error("tampered signature accepted")
	}
	// Wrong measurement (different code was loaded).
	otherM := Measure([]byte("evil code"), []byte("cfg"))
	evil := GenerateQuote(key, otherM, 3, nonce, false, now)
	if err := VerifyQuote(key, evil, basePol); err == nil {
		t.Error("wrong measurement accepted")
	}
	// Stale SVN (unpatched platform).
	stale := GenerateQuote(key, m, 1, nonce, false, now)
	if err := VerifyQuote(key, stale, basePol); err == nil {
		t.Error("stale SVN accepted")
	}
	// Replayed nonce.
	var otherNonce [16]byte
	copy(otherNonce[:], "different-nonce!")
	replay := GenerateQuote(key, m, 3, otherNonce, false, now)
	if err := VerifyQuote(key, replay, basePol); err == nil {
		t.Error("replayed quote accepted")
	}
	// Debug enclave.
	dbg := GenerateQuote(key, m, 3, nonce, true, now)
	if err := VerifyQuote(key, dbg, basePol); err == nil {
		t.Error("debug enclave accepted")
	}
	// Expired quote.
	old := GenerateQuote(key, m, 3, nonce, false, now.Add(-2*time.Hour))
	if err := VerifyQuote(key, old, basePol); err == nil {
		t.Error("expired quote accepted")
	}
	// Wrong platform key (quote from an emulator).
	var fake PlatformKey
	copy(fake[:], "not-the-real-platform-key-000000")
	forged := GenerateQuote(fake, m, 3, nonce, false, now)
	if err := VerifyQuote(key, forged, basePol); err == nil {
		t.Error("forged quote accepted")
	}
}

func TestMeasurementLengthDomainSeparation(t *testing.T) {
	// Moving a byte across the code/config boundary must change the hash
	// (length is bound into the measurement).
	a := Measure([]byte("ab"), []byte("c"))
	b := Measure([]byte("a"), []byte("bc"))
	if a == b {
		t.Error("measurement lacks domain separation")
	}
}
