package workload

import (
	"math"
	"math/rand"
	"testing"
)

// interArrivals returns the gaps of a time series.
func interArrivals(times []float64) []float64 {
	out := make([]float64, 0, len(times)-1)
	prev := 0.0
	for _, t := range times {
		out = append(out, t-prev)
		prev = t
	}
	return out
}

// cv is the coefficient of variation (stddev/mean) of a sample.
func cv(xs []float64) float64 {
	mean, n := 0.0, float64(len(xs))
	for _, x := range xs {
		mean += x
	}
	mean /= n
	varsum := 0.0
	for _, x := range xs {
		varsum += (x - mean) * (x - mean)
	}
	return math.Sqrt(varsum/n) / mean
}

// measuredRate is arrivals per second over the generated span.
func measuredRate(times []float64) float64 {
	return float64(len(times)) / times[len(times)-1]
}

func TestSourcesHitConfiguredMeanRate(t *testing.T) {
	const n = 20000
	cases := []struct {
		src   Arrivals
		seeds int     // sample paths averaged (MMPP mixes slowly)
		tol   float64 // relative tolerance on the averaged measured rate
	}{
		{Poisson{Rate: 5}, 1, 0.05},
		{Bursty(5), 8, 0.10},
		{Diurnal{Mean: 5, Amplitude: 0.8, PeriodSec: 120}, 1, 0.05},
	}
	for _, c := range cases {
		got := 0.0
		for seed := 0; seed < c.seeds; seed++ {
			times := c.src.Times(n, rand.New(rand.NewSource(int64(7+seed))))
			if len(times) != n {
				t.Fatalf("%s: got %d times, want %d", c.src.Name(), len(times), n)
			}
			for i := 1; i < n; i++ {
				if times[i] < times[i-1] {
					t.Fatalf("%s: times not non-decreasing at %d", c.src.Name(), i)
				}
			}
			got += measuredRate(times)
		}
		got /= float64(c.seeds)
		want := c.src.MeanRate()
		if rel := math.Abs(got-want) / want; rel > c.tol {
			t.Errorf("%s: measured rate %.3f vs configured %.3f (rel err %.3f > %.3f)",
				c.src.Name(), got, want, rel, c.tol)
		}
	}
}

func TestBurstinessExceedsPoisson(t *testing.T) {
	const n = 20000
	rng := func() *rand.Rand { return rand.New(rand.NewSource(11)) }
	poissonCV := cv(interArrivals(Poisson{Rate: 5}.Times(n, rng())))
	if poissonCV < 0.9 || poissonCV > 1.1 {
		t.Fatalf("Poisson inter-arrival CV %.3f, want ~1", poissonCV)
	}
	mmppCV := cv(interArrivals(Bursty(5).Times(n, rng())))
	if mmppCV <= poissonCV*1.2 {
		t.Errorf("MMPP inter-arrival CV %.3f does not exceed Poisson's %.3f — burstiness failed to materialize", mmppCV, poissonCV)
	}
	diurnalCV := cv(interArrivals(Diurnal{Mean: 5, Amplitude: 0.8, PeriodSec: 60}.Times(n, rng())))
	if diurnalCV <= poissonCV*1.05 {
		t.Errorf("diurnal inter-arrival CV %.3f does not exceed Poisson's %.3f", diurnalCV, poissonCV)
	}
}

func TestRampRateGrows(t *testing.T) {
	r := Ramp{StartRate: 2, EndRate: 10, RampSec: 100}
	times := r.Times(4000, rand.New(rand.NewSource(3)))
	// Count arrivals in the first and last quarter of the ramp window.
	early, late := 0, 0
	for _, ts := range times {
		switch {
		case ts < 25:
			early++
		case ts >= 75 && ts < 100:
			late++
		}
	}
	if late <= 2*early {
		t.Errorf("ramp arrivals did not accelerate: %d early vs %d late", early, late)
	}
	if r.MeanRate() != 10 {
		t.Errorf("ramp MeanRate = %g, want the post-ramp rate 10", r.MeanRate())
	}
}

func TestReplayTilesTrace(t *testing.T) {
	rp := Replay{TimesSec: []float64{0, 1, 2, 3}}
	times := rp.Times(10, nil)
	if len(times) != 10 {
		t.Fatalf("replay returned %d times", len(times))
	}
	for i := 1; i < len(times); i++ {
		if times[i] < times[i-1] {
			t.Fatalf("replay times decrease at %d: %v", i, times)
		}
	}
	if got := rp.MeanRate(); math.Abs(got-1) > 1e-9 {
		t.Errorf("replay mean rate %g, want 1", got)
	}
}

func TestDeterministicUnderSeed(t *testing.T) {
	sc, err := ParseScenario("diurnal+rag", 4)
	if err != nil {
		t.Fatal(err)
	}
	a, err := sc.Generate(500, rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := sc.Generate(500, rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("generation not deterministic at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	c, _ := sc.Generate(500, rand.New(rand.NewSource(43)))
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestGenerateShapes(t *testing.T) {
	sc, err := ParseScenario("bursty+agentic", 6)
	if err != nil {
		t.Fatal(err)
	}
	reqs, err := sc.Generate(2000, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]int{}
	for _, r := range reqs {
		seen[r.Shape]++
		if r.InputLen <= 0 || r.OutputLen < 2 {
			t.Fatalf("bad lengths: %+v", r)
		}
		if r.PrefixLen >= r.InputLen {
			t.Fatalf("prefix covers whole prompt: %+v", r)
		}
		if (r.PrefixID == 0) != (r.PrefixLen == 0) {
			t.Fatalf("prefix ID/len disagree: %+v", r)
		}
	}
	// The 0.8/0.2 mix split should materialize roughly.
	if seen["agent-turn"] < 3*seen["agent-final"]/2 {
		t.Errorf("mix weights ignored: %v", seen)
	}
	// Prefix identities from different shapes must not collide.
	turnIDs, finalIDs := map[int]bool{}, map[int]bool{}
	for _, r := range reqs {
		if r.Shape == "agent-turn" {
			turnIDs[r.PrefixID] = true
		} else {
			finalIDs[r.PrefixID] = true
		}
	}
	for id := range turnIDs {
		if finalIDs[id] {
			t.Fatalf("prefix ID %d shared across shapes", id)
		}
	}
}

func TestParseScenario(t *testing.T) {
	for _, name := range []string{"poisson", "bursty", "mmpp", "diurnal", "ramp", "chat", "rag", "agentic", "diurnal+rag", "ramp+agentic", ""} {
		sc, err := ParseScenario(name, 3)
		if err != nil {
			t.Errorf("ParseScenario(%q): %v", name, err)
			continue
		}
		if err := sc.Validate(); err != nil {
			t.Errorf("ParseScenario(%q) invalid: %v", name, err)
		}
	}
	for _, name := range []string{"nope", "diurnal+nope", "a+b+c"} {
		if _, err := ParseScenario(name, 3); err == nil {
			t.Errorf("ParseScenario(%q) accepted", name)
		}
	}
	if _, err := ParseScenario("poisson", 0); err == nil {
		t.Error("zero rate accepted")
	}
}

func TestMixValidateAndMeans(t *testing.T) {
	if err := (Mix{}).Validate(); err == nil {
		t.Error("empty mix accepted")
	}
	if err := (Mix{{Name: "x", Weight: -1, InputLen: 10, OutputLen: 10}}).Validate(); err == nil {
		t.Error("negative weight accepted")
	}
	if err := (Mix{{Name: "x", Weight: 1, InputLen: 10, OutputLen: 10, PrefixGroups: 2, PrefixFrac: 1.5}}).Validate(); err == nil {
		t.Error("prefix fraction > 1 accepted")
	}
	m := Mix{
		{Name: "a", Weight: 1, InputLen: 100, OutputLen: 10},
		{Name: "b", Weight: 3, InputLen: 500, OutputLen: 50},
	}
	if got := m.MeanInputLen(); got != 400 {
		t.Errorf("MeanInputLen = %d, want 400", got)
	}
	if got := m.MeanOutputLen(); got != 40 {
		t.Errorf("MeanOutputLen = %d, want 40", got)
	}
}
