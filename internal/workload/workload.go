// Package workload generates the traffic scenarios the serving simulator
// consumes: an arrival process (stationary Poisson, bursty MMPP, diurnal
// sinusoid, ramp, or trace replay) crossed with a request-shape mix (chat,
// RAG long-prefill, agentic many-turns). The paper measures one request at
// a time on a quiet machine; real confidential deployments face
// non-stationary load, where the cost of protection includes paying
// TEE-specific cold starts to track the arrival process (internal/autoscale
// builds on these scenarios to quantify that).
//
// Every source is deterministic under a fixed *rand.Rand, so scenario
// sweeps are reproducible and fleet comparisons see identical offered load.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"slices"
	"sort"
	"strings"
)

// Request is one generated arrival before the serving layer adopts it:
// arrival time plus the request's shape. PrefixID/PrefixLen follow the
// serving convention — equal nonzero PrefixID means byte-identical content
// over the first PrefixLen prompt tokens.
type Request struct {
	ArrivalSec          float64
	InputLen, OutputLen int
	PrefixID, PrefixLen int
	// Shape names the mix entry this request was drawn from.
	Shape string
}

// TimeStream yields one arrival time per call, non-decreasing from 0.
// It is the lazy form of Arrivals.Times: epoch-sharded simulations pull
// arrivals on demand instead of materializing the whole horizon.
type TimeStream func() float64

// Arrivals is an arrival process: a source of event times on the simulated
// clock. Implementations must be deterministic given the rng.
type Arrivals interface {
	// Name identifies the process in reports and CLI flags.
	Name() string
	// MeanRate is the long-run arrival rate in requests/s, used by
	// capacity planning and the statistical tests.
	MeanRate() float64
	// Times draws n non-decreasing arrival times starting from 0.
	Times(n int, rng *rand.Rand) []float64
	// Stream returns the lazy counterpart of Times over the same rng:
	// draining n values from the stream yields exactly Times(n, rng),
	// bit for bit, because Times is implemented as that drain.
	Stream(rng *rand.Rand) TimeStream
}

// drainTimes materializes n values from a stream. Every Times
// implementation goes through it, so the streamed and batch forms of an
// arrival process can never diverge.
func drainTimes(ts TimeStream, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = ts()
	}
	return out
}

// Poisson is the stationary memoryless process the simulator used before
// scenarios existed: exponential inter-arrivals at a fixed rate.
type Poisson struct {
	Rate float64 // requests/s
}

// Name implements Arrivals.
func (p Poisson) Name() string { return "poisson" }

// MeanRate implements Arrivals.
func (p Poisson) MeanRate() float64 { return p.Rate }

// Times implements Arrivals.
func (p Poisson) Times(n int, rng *rand.Rand) []float64 {
	return drainTimes(p.Stream(rng), n)
}

// Stream implements Arrivals.
func (p Poisson) Stream(rng *rand.Rand) TimeStream {
	t := 0.0
	return func() float64 {
		t += rng.ExpFloat64() / p.Rate
		return t
	}
}

// MMPP is a two-state Markov-modulated Poisson process: the arrival rate
// switches between a low and a high state with exponentially distributed
// holding times. It is the standard bursty-traffic model — inter-arrival
// CV exceeds Poisson's 1, and bursts arrive in episodes long enough that a
// reactive autoscaler must actually scale (rather than average them away).
type MMPP struct {
	// LowRate/HighRate are the per-state arrival rates (requests/s).
	LowRate, HighRate float64
	// LowHoldSec/HighHoldSec are the mean state holding times.
	LowHoldSec, HighHoldSec float64
}

// Bursty returns an MMPP calibrated so its long-run mean equals rate while
// bursts run at 4x and lulls at 1/4x, with burst episodes of ~20 s — long
// enough to overwhelm an unscaled fleet, short enough that holding peak
// capacity forever is visibly wasteful.
func Bursty(rate float64) MMPP {
	// mean = (rl·hl + rh·hh) / (hl + hh); with rl = rate/4, rh = 4·rate,
	// hl = 4·hh the mean works out to exactly rate.
	return MMPP{
		LowRate: rate / 4, HighRate: 4 * rate,
		LowHoldSec: 80, HighHoldSec: 20,
	}
}

// Name implements Arrivals.
func (m MMPP) Name() string { return "bursty" }

// MeanRate implements Arrivals.
func (m MMPP) MeanRate() float64 {
	if m.LowHoldSec+m.HighHoldSec <= 0 {
		return 0
	}
	return (m.LowRate*m.LowHoldSec + m.HighRate*m.HighHoldSec) / (m.LowHoldSec + m.HighHoldSec)
}

// Times implements Arrivals: competing exponentials between the next
// arrival in the current state and the next state switch.
func (m MMPP) Times(n int, rng *rand.Rand) []float64 {
	return drainTimes(m.Stream(rng), n)
}

// Stream implements Arrivals.
func (m MMPP) Stream(rng *rand.Rand) TimeStream {
	t := 0.0
	high := false // start in the lull so ramp-up dynamics are exercised
	return func() float64 {
		for {
			rate, hold := m.LowRate, m.LowHoldSec
			if high {
				rate, hold = m.HighRate, m.HighHoldSec
			}
			toSwitch := rng.ExpFloat64() * hold
			toArrival := math.Inf(1)
			if rate > 0 {
				toArrival = rng.ExpFloat64() / rate
			}
			if toArrival < toSwitch {
				t += toArrival
				return t
			}
			t += toSwitch
			high = !high
		}
	}
}

// Diurnal modulates a Poisson process with a sinusoid: rate(t) = Mean ×
// (1 + Amplitude·sin(2πt/PeriodSec − π/2)), starting at the trough so a
// simulation always exercises the scale-up edge. Amplitude in [0, 1).
type Diurnal struct {
	Mean      float64
	Amplitude float64
	PeriodSec float64
}

// Name implements Arrivals.
func (d Diurnal) Name() string { return "diurnal" }

// MeanRate implements Arrivals.
func (d Diurnal) MeanRate() float64 { return d.Mean }

// rateAt is the instantaneous rate.
func (d Diurnal) rateAt(t float64) float64 {
	return d.Mean * (1 + d.Amplitude*math.Sin(2*math.Pi*t/d.PeriodSec-math.Pi/2))
}

// Times implements Arrivals by thinning: candidates at the peak rate are
// accepted with probability rate(t)/peak.
func (d Diurnal) Times(n int, rng *rand.Rand) []float64 {
	return drainTimes(d.Stream(rng), n)
}

// Stream implements Arrivals.
func (d Diurnal) Stream(rng *rand.Rand) TimeStream {
	peak := d.Mean * (1 + d.Amplitude)
	t := 0.0
	return func() float64 {
		for {
			t += rng.ExpFloat64() / peak
			if rng.Float64()*peak <= d.rateAt(t) {
				return t
			}
		}
	}
}

// Ramp grows the rate linearly from StartRate to EndRate over RampSec and
// holds it there — the sudden-popularity scenario autoscalers size for.
type Ramp struct {
	StartRate, EndRate float64
	RampSec            float64
}

// Name implements Arrivals.
func (r Ramp) Name() string { return "ramp" }

// MeanRate implements Arrivals: the post-ramp steady rate, which is what a
// fleet must eventually sustain.
func (r Ramp) MeanRate() float64 { return r.EndRate }

// rateAt is the instantaneous rate.
func (r Ramp) rateAt(t float64) float64 {
	if t >= r.RampSec || r.RampSec <= 0 {
		return r.EndRate
	}
	return r.StartRate + (r.EndRate-r.StartRate)*t/r.RampSec
}

// Times implements Arrivals by thinning at the larger endpoint rate.
func (r Ramp) Times(n int, rng *rand.Rand) []float64 {
	return drainTimes(r.Stream(rng), n)
}

// Stream implements Arrivals.
func (r Ramp) Stream(rng *rand.Rand) TimeStream {
	peak := math.Max(r.StartRate, r.EndRate)
	t := 0.0
	return func() float64 {
		for {
			t += rng.ExpFloat64() / peak
			if rng.Float64()*peak <= r.rateAt(t) {
				return t
			}
		}
	}
}

// Replay replays recorded arrival times (e.g. a production trace). When
// more arrivals are requested than the trace holds, it tiles the trace
// end-to-end, preserving its bursts.
type Replay struct {
	// TimesSec are the recorded arrival offsets, non-decreasing from 0.
	TimesSec []float64
}

// Name implements Arrivals.
func (r Replay) Name() string { return "replay" }

// MeanRate implements Arrivals.
func (r Replay) MeanRate() float64 {
	if len(r.TimesSec) < 2 {
		return 0
	}
	span := r.TimesSec[len(r.TimesSec)-1] - r.TimesSec[0]
	if span <= 0 {
		return 0
	}
	return float64(len(r.TimesSec)-1) / span
}

// Times implements Arrivals. The rng is unused — a replay is already a
// fixed sample path.
func (r Replay) Times(n int, rng *rand.Rand) []float64 {
	return drainTimes(r.Stream(rng), n)
}

// Stream implements Arrivals, tiling the trace with the mean gap as the
// seam so the wrapped stream keeps the trace's rate.
func (r Replay) Stream(_ *rand.Rand) TimeStream {
	if len(r.TimesSec) == 0 {
		return func() float64 { return 0 }
	}
	seam := 1.0
	if rate := r.MeanRate(); rate > 0 {
		seam = 1 / rate
	}
	i, base, last := 0, 0.0, 0.0
	return func() float64 {
		if i == len(r.TimesSec) {
			i = 0
			base = last + seam
		}
		last = base + r.TimesSec[i] - r.TimesSec[0]
		i++
		return last
	}
}

// Shape is one request class of a traffic mix.
type Shape struct {
	// Name labels the class in reports (e.g. "chat", "rag", "agentic").
	Name string
	// Weight is the class's share of arrivals (relative; need not sum to 1).
	Weight float64
	// InputLen/OutputLen are the mean prompt and generation lengths.
	InputLen, OutputLen int
	// LengthJitter varies individual lengths uniformly within ±fraction.
	LengthJitter float64
	// PrefixGroups > 0 gives the class shared prompt prefixes: each request
	// draws one of this many prefix identities covering PrefixFrac of the
	// mean prompt (system prompt + document set for RAG, system prompt +
	// tool schemas for agents).
	PrefixGroups int
	PrefixFrac   float64
}

// Mix is a weighted set of request shapes.
type Mix []Shape

// Validate rejects unusable mixes.
func (m Mix) Validate() error {
	if len(m) == 0 {
		return fmt.Errorf("workload: empty shape mix")
	}
	total := 0.0
	for _, s := range m {
		if s.Weight < 0 {
			return fmt.Errorf("workload: shape %q has negative weight %g", s.Name, s.Weight)
		}
		if s.InputLen <= 0 || s.OutputLen <= 0 {
			return fmt.Errorf("workload: shape %q needs positive lengths, got %d/%d", s.Name, s.InputLen, s.OutputLen)
		}
		if s.PrefixGroups > 0 && (s.PrefixFrac <= 0 || s.PrefixFrac >= 1) {
			return fmt.Errorf("workload: shape %q prefix fraction %g outside (0, 1)", s.Name, s.PrefixFrac)
		}
		total += s.Weight
	}
	if total <= 0 {
		return fmt.Errorf("workload: mix weights sum to %g", total)
	}
	return nil
}

// MeanInputLen is the weighted mean prompt length of the mix.
func (m Mix) MeanInputLen() int { return m.meanLen(func(s Shape) int { return s.InputLen }) }

// MeanOutputLen is the weighted mean generation length of the mix.
func (m Mix) MeanOutputLen() int { return m.meanLen(func(s Shape) int { return s.OutputLen }) }

func (m Mix) meanLen(f func(Shape) int) int {
	sum, w := 0.0, 0.0
	for _, s := range m {
		sum += s.Weight * float64(f(s))
		w += s.Weight
	}
	if w <= 0 {
		return 0
	}
	return int(math.Round(sum / w))
}

// ChatMix is interactive chat traffic: short-to-medium prompts, moderate
// generations, a shared system prompt across a few personas.
func ChatMix() Mix {
	return Mix{
		{Name: "chat-short", Weight: 0.7, InputLen: 256, OutputLen: 128, LengthJitter: 0.3,
			PrefixGroups: 2, PrefixFrac: 0.25},
		{Name: "chat-long", Weight: 0.3, InputLen: 768, OutputLen: 224, LengthJitter: 0.3,
			PrefixGroups: 2, PrefixFrac: 0.25},
	}
}

// RAGMix is retrieval-augmented traffic: long document-stuffed prompts
// dominated by a shared prefix (system prompt + document set), short
// answers — prefill-heavy, prefix-cache friendly.
func RAGMix() Mix {
	return Mix{
		{Name: "rag", Weight: 1, InputLen: 1536, OutputLen: 160, LengthJitter: 0.2,
			PrefixGroups: 4, PrefixFrac: 0.75},
	}
}

// AgenticMix is multi-turn agent traffic: the accumulated tool-call history
// re-enters as a long prompt each turn (shared tool schemas as prefix) and
// generations are short tool invocations — decode-light, KV-heavy.
func AgenticMix() Mix {
	return Mix{
		{Name: "agent-turn", Weight: 0.8, InputLen: 1152, OutputLen: 64, LengthJitter: 0.35,
			PrefixGroups: 3, PrefixFrac: 0.4},
		{Name: "agent-final", Weight: 0.2, InputLen: 1536, OutputLen: 256, LengthJitter: 0.2,
			PrefixGroups: 3, PrefixFrac: 0.3},
	}
}

// Scenario is an arrival process crossed with a shape mix: everything a
// serving experiment needs to synthesize offered load.
type Scenario struct {
	Arrivals Arrivals
	Mix      Mix
}

// Name identifies the scenario by its arrival process (mixes carry no
// identity of their own — label the mix separately when it matters).
func (s Scenario) Name() string {
	if s.Arrivals == nil {
		return "?"
	}
	return s.Arrivals.Name()
}

// Validate rejects unusable scenarios.
func (s Scenario) Validate() error {
	if s.Arrivals == nil {
		return fmt.Errorf("workload: scenario needs an arrival process")
	}
	if s.Arrivals.MeanRate() <= 0 {
		return fmt.Errorf("workload: scenario %q has non-positive mean rate %g", s.Arrivals.Name(), s.Arrivals.MeanRate())
	}
	return s.Mix.Validate()
}

// Generate draws n requests: arrival times from the process, shapes from
// the mix, deterministic under the rng. Prefix identities are disjoint
// across shapes (shape index partitions the ID space).
//
// Generate makes two passes over the rng — all n times first, then n
// shapes. The streaming Generator interleaves the two draws per request;
// both are valid deterministic sample paths of the same scenario, but
// they are not the same path, so callers comparing runs bit-for-bit must
// compare like with like.
func (s Scenario) Generate(n int, rng *rand.Rand) ([]Request, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	times := s.Arrivals.Times(n, rng)
	totalW := s.Mix.totalWeight()
	out := make([]Request, n)
	for i, t := range times {
		out[i] = s.shapeRequest(t, rng, totalW)
	}
	return out, nil
}

// totalWeight sums the mix weights (already validated positive).
func (m Mix) totalWeight() float64 {
	w := 0.0
	for _, sh := range m {
		w += sh.Weight
	}
	return w
}

// shapeRequest draws one request's shape for an arrival at t. The rng
// draw order per request (shape pick, length jitters, prefix identity) is
// shared by Generate and Generator.Next.
func (s Scenario) shapeRequest(t float64, rng *rand.Rand, totalW float64) Request {
	sh, si := s.pick(rng, totalW)
	r := Request{ArrivalSec: t, Shape: sh.Name}
	jitter := func(mean int) int {
		if sh.LengthJitter <= 0 || mean <= 0 {
			return mean
		}
		f := 1 + sh.LengthJitter*(2*rng.Float64()-1)
		if v := int(math.Round(float64(mean) * f)); v >= 1 {
			return v
		}
		return 1
	}
	if sh.PrefixGroups > 0 {
		prefixLen := int(math.Round(sh.PrefixFrac * float64(sh.InputLen)))
		if prefixLen >= sh.InputLen {
			prefixLen = sh.InputLen - 1
		}
		// The shared prefix has one fixed length per shape; only the
		// request-specific suffix jitters.
		suffix := jitter(sh.InputLen - prefixLen)
		if suffix < 1 {
			suffix = 1
		}
		r.PrefixID = si*prefixIDStride + rng.Intn(sh.PrefixGroups) + 1
		r.PrefixLen = prefixLen
		r.InputLen = prefixLen + suffix
	} else {
		r.InputLen = jitter(sh.InputLen)
	}
	r.OutputLen = jitter(sh.OutputLen)
	if r.OutputLen < 2 {
		r.OutputLen = 2 // keep TPOT defined
	}
	return r
}

// Generator streams a scenario's requests one at a time, in arrival
// order, without materializing the horizon. Memory is O(1) in the number
// of requests — the bounded-memory serving runs pull their offered load
// from here. See Generate for how the two rng draw orders relate.
type Generator struct {
	s      Scenario
	ts     TimeStream
	rng    *rand.Rand
	totalW float64
}

// Stream validates the scenario and returns its streaming generator.
func (s Scenario) Stream(rng *rand.Rand) (*Generator, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &Generator{s: s, ts: s.Arrivals.Stream(rng), rng: rng, totalW: s.Mix.totalWeight()}, nil
}

// Next draws the next request.
func (g *Generator) Next() Request {
	return g.s.shapeRequest(g.ts(), g.rng, g.totalW)
}

// prefixIDStride partitions prefix identities by shape so two shapes can
// never alias a shared prefix.
const prefixIDStride = 1 << 16

// pick draws one shape by weight.
func (s Scenario) pick(rng *rand.Rand, totalW float64) (Shape, int) {
	x := rng.Float64() * totalW
	for i, sh := range s.Mix {
		x -= sh.Weight
		if x < 0 {
			return sh, i
		}
	}
	return s.Mix[len(s.Mix)-1], len(s.Mix) - 1
}

// scenarioNames lists the CLI-recognized arrival and mix names.
var arrivalNames = []string{"poisson", "bursty", "diurnal", "ramp"}
var mixNames = []string{"chat", "rag", "agentic"}

// ParseScenario resolves a CLI scenario name at the given mean rate.
// Accepted forms: an arrival process ("poisson", "bursty", "diurnal",
// "ramp") with the chat mix, a mix name ("chat", "rag", "agentic") with
// Poisson arrivals, or "arrivals+mix" (e.g. "diurnal+rag").
func ParseScenario(name string, rate float64) (Scenario, error) {
	if rate <= 0 {
		return Scenario{}, fmt.Errorf("workload: scenario %q needs a positive mean rate, got %g", name, rate)
	}
	arrival, mixName := "poisson", "chat"
	parts := strings.Split(strings.ToLower(strings.TrimSpace(name)), "+")
	switch len(parts) {
	case 1:
		switch {
		case slices.Contains(arrivalNames, parts[0]) || parts[0] == "mmpp":
			arrival = parts[0]
		case slices.Contains(mixNames, parts[0]):
			mixName = parts[0]
		case parts[0] == "":
			// defaults
		default:
			return Scenario{}, fmt.Errorf("workload: unknown scenario %q (arrivals: %s; mixes: %s; or arrivals+mix)",
				name, strings.Join(arrivalNames, "|"), strings.Join(mixNames, "|"))
		}
	case 2:
		arrival, mixName = parts[0], parts[1]
	default:
		return Scenario{}, fmt.Errorf("workload: scenario %q has more than one '+'", name)
	}

	var arr Arrivals
	switch arrival {
	case "poisson":
		arr = Poisson{Rate: rate}
	case "bursty", "mmpp":
		arr = Bursty(rate)
	case "diurnal":
		// One compressed "day" of 600 s: sweeps finish in simulated minutes
		// while the trough-to-peak swing still spans the 1±0.8 band.
		arr = Diurnal{Mean: rate, Amplitude: 0.8, PeriodSec: 600}
	case "ramp":
		arr = Ramp{StartRate: rate / 4, EndRate: rate, RampSec: 300}
	default:
		return Scenario{}, fmt.Errorf("workload: unknown arrival process %q (%s)", arrival, strings.Join(arrivalNames, "|"))
	}
	var mix Mix
	switch mixName {
	case "chat":
		mix = ChatMix()
	case "rag":
		mix = RAGMix()
	case "agentic":
		mix = AgenticMix()
	default:
		return Scenario{}, fmt.Errorf("workload: unknown mix %q (%s)", mixName, strings.Join(mixNames, "|"))
	}
	return Scenario{Arrivals: arr, Mix: mix}, nil
}

// ScenarioNames lists the accepted -scenario spellings for CLI help.
func ScenarioNames() string {
	all := append(append([]string{}, arrivalNames...), mixNames...)
	sort.Strings(all)
	return strings.Join(all, "|")
}
