// Package cloud implements the cost model of the paper's §V-D: GCP-style
// spot pricing where vCPU count and memory are rented separately (Figs 12
// and 13), the confidential H100 instance price, and dollars-per-million-
// tokens arithmetic on top of measured throughput.
package cloud

import (
	"fmt"
	"math"
)

// PriceBook holds the hourly spot prices used by the cost experiments.
// Values follow the paper's methodology (GCP US East 1 spot prices for the
// same machine type, memory fixed at 128 GB while vCPUs scale).
type PriceBook struct {
	// VCPUHour is the price of one vCPU for one hour (USD).
	VCPUHour float64
	// MemGiBHour is the price of one GiB of RAM for one hour (USD).
	MemGiBHour float64
	// CGPUHour is the price of the confidential H100 instance per hour
	// (GPU + host CPU + memory, as rented).
	CGPUHour float64
	// SapphireRapidsDiscount is the cheaper previous-generation alternative
	// the paper mentions (≈2x cheaper, up to 40% slower).
	SapphireRapidsDiscount float64
}

// DefaultPrices returns the calibrated price book.
func DefaultPrices() PriceBook {
	return PriceBook{
		VCPUHour:               0.0105,
		MemGiBHour:             0.0012,
		CGPUHour:               6.20,
		SapphireRapidsDiscount: 0.5,
	}
}

// CPUInstance describes a rented confidential-VM shape.
type CPUInstance struct {
	VCPUs  int
	MemGiB int
}

// Validate rejects empty shapes.
func (c CPUInstance) Validate() error {
	if c.VCPUs <= 0 || c.MemGiB <= 0 {
		return fmt.Errorf("cloud: instance needs positive vCPUs and memory, got %+v", c)
	}
	return nil
}

// HourlyCost returns the instance's rental price per hour. Non-positive or
// non-finite price-book entries are rejected explicitly: a zero or NaN
// hourly price would otherwise flow through the $/Mtok arithmetic as a
// spuriously free (or NaN/Inf) cost point and silently win every
// "cheapest" comparison.
func (p PriceBook) HourlyCost(inst CPUInstance) (float64, error) {
	if err := inst.Validate(); err != nil {
		return 0, err
	}
	if !(p.VCPUHour > 0) || math.IsInf(p.VCPUHour, 0) {
		return 0, fmt.Errorf("cloud: vCPU hourly price %g must be positive and finite", p.VCPUHour)
	}
	if !(p.MemGiBHour > 0) || math.IsInf(p.MemGiBHour, 0) {
		return 0, fmt.Errorf("cloud: memory hourly price %g must be positive and finite", p.MemGiBHour)
	}
	return float64(inst.VCPUs)*p.VCPUHour + float64(inst.MemGiB)*p.MemGiBHour, nil
}

// CostPerMTokens converts an hourly price and a throughput into dollars per
// one million generated tokens.
func CostPerMTokens(hourly, tokensPerSec float64) (float64, error) {
	if !(tokensPerSec > 0) || math.IsInf(tokensPerSec, 0) {
		return 0, fmt.Errorf("cloud: throughput %g must be positive and finite", tokensPerSec)
	}
	if hourly < 0 || math.IsNaN(hourly) || math.IsInf(hourly, 0) {
		return 0, fmt.Errorf("cloud: hourly price %g must be non-negative and finite", hourly)
	}
	secondsPerMTok := 1e6 / tokensPerSec
	return hourly / 3600 * secondsPerMTok, nil
}

// CPUCostPerMTokens prices a CPU run: the paper fixes memory at 128 GiB and
// scales vCPUs (Fig 12).
func (p PriceBook) CPUCostPerMTokens(vcpus int, tokensPerSec float64) (float64, error) {
	hourly, err := p.HourlyCost(CPUInstance{VCPUs: vcpus, MemGiB: 128})
	if err != nil {
		return 0, err
	}
	return CostPerMTokens(hourly, tokensPerSec)
}

// CGPUCostPerMTokens prices a confidential-GPU run.
func (p PriceBook) CGPUCostPerMTokens(tokensPerSec float64) (float64, error) {
	return CostPerMTokens(p.CGPUHour, tokensPerSec)
}

// ReplicasForRate returns how many identical replicas are needed so that
// replicas × perReplicaRate ≥ targetRate. Rates are in requests (or tokens)
// per second; the unit only has to match between the two arguments. A
// non-positive perReplicaRate means a single replica cannot serve any load
// within SLO, so no finite fleet can either.
func ReplicasForRate(targetRate, perReplicaRate float64) (int, error) {
	if targetRate <= 0 {
		return 0, fmt.Errorf("cloud: non-positive target rate %g", targetRate)
	}
	if perReplicaRate <= 0 {
		return 0, fmt.Errorf("cloud: replica serves no load within SLO (rate %g)", perReplicaRate)
	}
	return int(math.Ceil(targetRate / perReplicaRate)), nil
}

// ServingCost prices an SLO-constrained deployment: a fleet of `replicas`
// identical instances at `hourlyPerReplica` serving an offered load of
// `offeredTokensPerSec` aggregate output tokens per second. The result is
// dollars per million served tokens. The fleet is sized for SLO compliance
// (see ReplicasForRate), so platforms that need more replicas to hit the
// same SLO pay for the whole fleet while serving the same load — this is
// where the TEE "cost of protection at SLO" becomes visible.
func ServingCost(hourlyPerReplica float64, replicas int, offeredTokensPerSec float64) (float64, error) {
	if replicas <= 0 {
		return 0, fmt.Errorf("cloud: non-positive replica count %d", replicas)
	}
	return CostPerMTokens(hourlyPerReplica*float64(replicas), offeredTokensPerSec)
}

// FleetCostPerMTok prices a simulated fleet: `replicas` identical
// instances at `hourlyPerReplica` whose simulation served
// `servedTokensPerSec` aggregate SLO-compliant output tokens per second.
// Unlike ServingCost, the fleet size and the served rate both come from a
// multi-replica simulation (see internal/serve.RunFleet) rather than from
// extrapolating one replica's goodput — load-balancer skew, per-replica
// queueing and prefix-cache locality are in the inputs.
func FleetCostPerMTok(hourlyPerReplica float64, replicas int, servedTokensPerSec float64) (float64, error) {
	if replicas <= 0 {
		return 0, fmt.Errorf("cloud: non-positive replica count %d", replicas)
	}
	if !(hourlyPerReplica > 0) || math.IsInf(hourlyPerReplica, 0) {
		return 0, fmt.Errorf("cloud: replica hourly price %g must be positive and finite", hourlyPerReplica)
	}
	return CostPerMTokens(hourlyPerReplica*float64(replicas), servedTokensPerSec)
}

// CostPoint is one (vCPUs, throughput, cost) sample of a scaling sweep.
type CostPoint struct {
	VCPUs        int
	TokensPerSec float64
	USDPerMTok   float64
}

// Sweep prices a throughput-vs-vCPU curve.
func (p PriceBook) Sweep(vcpus []int, tput []float64) ([]CostPoint, error) {
	if len(vcpus) != len(tput) {
		return nil, fmt.Errorf("cloud: %d vCPU points vs %d throughputs", len(vcpus), len(tput))
	}
	out := make([]CostPoint, len(vcpus))
	for i := range vcpus {
		c, err := p.CPUCostPerMTokens(vcpus[i], tput[i])
		if err != nil {
			return nil, err
		}
		out[i] = CostPoint{VCPUs: vcpus[i], TokensPerSec: tput[i], USDPerMTok: c}
	}
	return out, nil
}

// Cheapest returns the sweep point with minimal $/Mtok.
func Cheapest(points []CostPoint) (CostPoint, error) {
	if len(points) == 0 {
		return CostPoint{}, fmt.Errorf("cloud: empty sweep")
	}
	best := points[0]
	for _, pt := range points[1:] {
		if pt.USDPerMTok < best.USDPerMTok {
			best = pt
		}
	}
	return best, nil
}

// AdvantagePct returns how much cheaper `mine` is than `theirs`, in percent
// of `mine` — the convention of the paper's Fig 12 annotations
// ("TDX=100.32%" means the cGPU costs 100.32% more than the best TDX
// configuration). Negative values mean `mine` is more expensive.
func AdvantagePct(mine, theirs float64) float64 {
	if mine <= 0 {
		return math.NaN()
	}
	return (theirs - mine) / mine * 100
}
