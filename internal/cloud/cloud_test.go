package cloud

import (
	"math"
	"testing"
	"testing/quick"

	"cllm/internal/dtype"
	"cllm/internal/hw"
	"cllm/internal/model"
	"cllm/internal/perf"
	"cllm/internal/tee"
	"cllm/internal/trace"
)

func TestHourlyCost(t *testing.T) {
	p := DefaultPrices()
	got, err := p.HourlyCost(CPUInstance{VCPUs: 16, MemGiB: 128})
	if err != nil {
		t.Fatal(err)
	}
	want := 16*p.VCPUHour + 128*p.MemGiBHour
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("HourlyCost = %g, want %g", got, want)
	}
	if _, err := p.HourlyCost(CPUInstance{}); err == nil {
		t.Error("empty instance priced")
	}
}

func TestHourlyCostRejectsBadPrices(t *testing.T) {
	inst := CPUInstance{VCPUs: 16, MemGiB: 128}
	for _, p := range []PriceBook{
		{VCPUHour: 0, MemGiBHour: 0.001},
		{VCPUHour: -0.01, MemGiBHour: 0.001},
		{VCPUHour: math.NaN(), MemGiBHour: 0.001},
		{VCPUHour: math.Inf(1), MemGiBHour: 0.001},
		{VCPUHour: 0.01, MemGiBHour: 0},
		{VCPUHour: 0.01, MemGiBHour: math.NaN()},
	} {
		if cost, err := p.HourlyCost(inst); err == nil {
			t.Errorf("price book %+v priced instance at %g instead of erroring", p, cost)
		}
	}
}

func TestFleetCostPerMTokRejectsBadPrices(t *testing.T) {
	for _, hourly := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if cost, err := FleetCostPerMTok(hourly, 2, 100); err == nil {
			t.Errorf("hourly %g priced fleet at %g instead of erroring", hourly, cost)
		}
	}
	if _, err := FleetCostPerMTok(1, 0, 100); err == nil {
		t.Error("zero replicas priced")
	}
	if _, err := FleetCostPerMTok(1, 2, math.NaN()); err == nil {
		t.Error("NaN served rate priced")
	}
	got, err := FleetCostPerMTok(0.36, 2, 200)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1.0) > 1e-9 {
		t.Errorf("FleetCostPerMTok = %g, want 1.0", got)
	}
}

func TestCostPerMTokens(t *testing.T) {
	// 100 tok/s at $0.36/hr: 1e6 tokens take 1e4 s; $0.36/3600*1e4 = $1.
	got, err := CostPerMTokens(0.36, 100)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1.0) > 1e-9 {
		t.Errorf("CostPerMTokens = %g, want 1.0", got)
	}
	if _, err := CostPerMTokens(1, 0); err == nil {
		t.Error("zero throughput priced")
	}
	if _, err := CostPerMTokens(-1, 10); err == nil {
		t.Error("negative price accepted")
	}
}

func TestCostMonotonicity(t *testing.T) {
	if err := quick.Check(func(tputRaw, priceRaw uint16) bool {
		tput := float64(tputRaw%1000) + 1
		price := float64(priceRaw%100)/10 + 0.1
		c1, err1 := CostPerMTokens(price, tput)
		c2, err2 := CostPerMTokens(price, tput*2)
		if err1 != nil || err2 != nil {
			return false
		}
		// Double throughput → half cost.
		return math.Abs(c1-2*c2)/c1 < 1e-9
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestSweepAndCheapest(t *testing.T) {
	p := DefaultPrices()
	pts, err := p.Sweep([]int{2, 8, 32}, []float64{5, 18, 30})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("sweep size %d", len(pts))
	}
	best, err := Cheapest(pts)
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range pts {
		if pt.USDPerMTok < best.USDPerMTok {
			t.Errorf("Cheapest missed %v", pt)
		}
	}
	if _, err := p.Sweep([]int{1}, []float64{1, 2}); err == nil {
		t.Error("mismatched sweep accepted")
	}
	if _, err := Cheapest(nil); err == nil {
		t.Error("empty cheapest accepted")
	}
}

func TestAdvantagePct(t *testing.T) {
	if got := AdvantagePct(1, 2); got != 100 {
		t.Errorf("AdvantagePct(1,2) = %g, want 100", got)
	}
	if got := AdvantagePct(2, 1); got != -50 {
		t.Errorf("AdvantagePct(2,1) = %g, want -50", got)
	}
	if !math.IsNaN(AdvantagePct(0, 1)) {
		t.Error("zero base not NaN")
	}
}

// tdxBestCost runs the Fig-12 sweep for one batch size and returns the best
// TDX cost and the cGPU cost.
func costPair(t *testing.T, batch, inputLen int) (tdxBest, cgpu float64) {
	t.Helper()
	cfg7, err := model.Lookup("llama2-7b")
	if err != nil {
		t.Fatal(err)
	}
	prices := DefaultPrices()
	wl := trace.Workload{Model: cfg7, Kind: dtype.BF16, Batch: batch, Beam: 1, InputLen: inputLen, OutputLen: 64}
	var pts []CostPoint
	for _, v := range []int{2, 4, 8, 16, 32, 48, 60} {
		r, err := perf.RunCPU(perf.CPURun{
			CPU: hw.EMR2(), Platform: tee.TDX(), Workload: wl,
			Sockets: 1, CoresPerSocket: v, AMX: true, Seed: 31,
		})
		if err != nil {
			t.Fatal(err)
		}
		c, err := prices.CPUCostPerMTokens(v, r.Throughput())
		if err != nil {
			t.Fatal(err)
		}
		pts = append(pts, CostPoint{VCPUs: v, TokensPerSec: r.Throughput(), USDPerMTok: c})
	}
	best, err := Cheapest(pts)
	if err != nil {
		t.Fatal(err)
	}
	rg, err := perf.RunGPU(perf.GPURun{GPU: hw.H100NVL(), Platform: tee.CGPU(), Workload: wl, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	cg, err := prices.CGPUCostPerMTokens(rg.Throughput())
	if err != nil {
		t.Fatal(err)
	}
	return best.USDPerMTok, cg
}

func TestFig12CostShape(t *testing.T) {
	// Paper Fig 12: at batch 1 the cGPU is ≈100% more expensive than the
	// best TDX config; the advantage fades as batch grows and roughly
	// equalizes near batch 128.
	adv := func(batch int) float64 {
		tdx, cgpu := costPair(t, batch, 128)
		return AdvantagePct(tdx, cgpu)
	}
	a1 := adv(1)
	a16 := adv(16)
	a128 := adv(128)
	if a1 < 50 || a1 > 170 {
		t.Errorf("batch 1 TDX advantage = %.1f%%, want ≈100%%", a1)
	}
	if !(a1 > a16 && a16 > a128) {
		t.Errorf("advantage not fading with batch: %.1f%% %.1f%% %.1f%%", a1, a16, a128)
	}
	if a128 > 40 {
		t.Errorf("batch 128 advantage = %.1f%%, want near parity", a128)
	}
}

func TestFig13InputSizeCostCollapse(t *testing.T) {
	// Paper Fig 13: at batch 4 the CPU cost advantage collapses as input
	// size grows (86% at 128 tokens → negative beyond 256).
	adv := func(in int) float64 {
		tdx, cgpu := costPair(t, 4, in)
		return AdvantagePct(tdx, cgpu)
	}
	a128 := adv(128)
	a512 := adv(512)
	a2048 := adv(2048)
	if !(a128 > a512 && a512 > a2048) {
		t.Errorf("advantage not collapsing with input: %.1f%% %.1f%% %.1f%%", a128, a512, a2048)
	}
	if a128-a2048 < 40 {
		t.Errorf("advantage collapsed only %.1f points from in128 to in2048, want ≥40", a128-a2048)
	}
}

func TestReplicasForRate(t *testing.T) {
	n, err := ReplicasForRate(20, 6)
	if err != nil || n != 4 {
		t.Fatalf("ReplicasForRate(20, 6) = %d, %v; want 4", n, err)
	}
	n, err = ReplicasForRate(6, 6)
	if err != nil || n != 1 {
		t.Fatalf("exact fit = %d, %v; want 1", n, err)
	}
	if _, err := ReplicasForRate(10, 0); err == nil {
		t.Error("zero per-replica rate accepted")
	}
	if _, err := ReplicasForRate(0, 5); err == nil {
		t.Error("zero target rate accepted")
	}
}

func TestServingCost(t *testing.T) {
	// 3 replicas at $2/h serving 100 tok/s: $6/h over 0.36 Mtok/h.
	usd, err := ServingCost(2, 3, 100)
	if err != nil {
		t.Fatal(err)
	}
	want := 6.0 / (100 * 3600 / 1e6)
	if diff := usd - want; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("ServingCost = %g, want %g", usd, want)
	}
	if _, err := ServingCost(2, 0, 100); err == nil {
		t.Error("zero replicas accepted")
	}
	if _, err := ServingCost(2, 1, 0); err == nil {
		t.Error("zero throughput accepted")
	}
}
