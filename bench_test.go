// Benchmark harness: one testing.B target per paper table/figure, each
// regenerating the artifact via the experiment registry and reporting the
// headline quantity as a custom metric, plus micro-benchmarks of the public
// API paths. Run with:
//
//	go test -bench=. -benchmem
package cllm

import (
	"fmt"
	"testing"
)

// benchExperiment runs one registered experiment per iteration and fails
// the benchmark if the paper's shape checks do not hold.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep, err := RunExperiment(id, true, 1)
		if err != nil {
			b.Fatal(err)
		}
		if !rep.Passed {
			b.Fatalf("%s failed shape checks: %v", id, rep.FailedChecks)
		}
	}
}

func BenchmarkFig01Summary(b *testing.B)      { benchExperiment(b, "fig1") }
func BenchmarkFig03Frameworks(b *testing.B)   { benchExperiment(b, "fig3") }
func BenchmarkFig04SingleSocket(b *testing.B) { benchExperiment(b, "fig4") }
func BenchmarkFig05NUMA70B(b *testing.B)      { benchExperiment(b, "fig5") }
func BenchmarkFig06Hugepages(b *testing.B)    { benchExperiment(b, "fig6") }
func BenchmarkFig07PerBlock(b *testing.B)     { benchExperiment(b, "fig7") }
func BenchmarkFig08AMX(b *testing.B)          { benchExperiment(b, "fig8") }
func BenchmarkFig09BatchScaling(b *testing.B) { benchExperiment(b, "fig9") }
func BenchmarkFig10InputScaling(b *testing.B) { benchExperiment(b, "fig10") }
func BenchmarkFig11GPU(b *testing.B)          { benchExperiment(b, "fig11") }
func BenchmarkFig12VCPUCost(b *testing.B)     { benchExperiment(b, "fig12") }
func BenchmarkFig13InputCost(b *testing.B)    { benchExperiment(b, "fig13") }
func BenchmarkFig14RAG(b *testing.B)          { benchExperiment(b, "fig14") }
func BenchmarkTable01Summary(b *testing.B)    { benchExperiment(b, "table1") }
func BenchmarkOtherModels(b *testing.B)       { benchExperiment(b, "othermodels") }
func BenchmarkSNCAblation(b *testing.B)       { benchExperiment(b, "snc") }

// Extension projections and the mechanism ablation (see DESIGN.md).
func BenchmarkSEVSNPProjection(b *testing.B) { benchExperiment(b, "sev") }
func BenchmarkB100Projection(b *testing.B)   { benchExperiment(b, "b100") }
func BenchmarkScaleOut(b *testing.B)         { benchExperiment(b, "scaleout") }
func BenchmarkHybridOffload(b *testing.B)    { benchExperiment(b, "hybrid") }
func BenchmarkSapphireRapids(b *testing.B)   { benchExperiment(b, "spr") }
func BenchmarkTDXAblation(b *testing.B)      { benchExperiment(b, "ablation") }
func BenchmarkServingCurves(b *testing.B)    { benchExperiment(b, "serving") }
func BenchmarkChunkedPrefill(b *testing.B)   { benchExperiment(b, "chunked") }
func BenchmarkPrefixCache(b *testing.B)      { benchExperiment(b, "prefix") }
func BenchmarkFleetPolicies(b *testing.B)    { benchExperiment(b, "fleet") }
func BenchmarkHeteroDispatch(b *testing.B)   { benchExperiment(b, "hetero") }
func BenchmarkAutoscaling(b *testing.B)      { benchExperiment(b, "autoscale") }
func BenchmarkPreemptPolicies(b *testing.B)  { benchExperiment(b, "preempt") }
func BenchmarkObservability(b *testing.B)    { benchExperiment(b, "obs") }
func BenchmarkAttribution(b *testing.B)      { benchExperiment(b, "attrib") }
func BenchmarkOverload(b *testing.B)         { benchExperiment(b, "overload") }
func BenchmarkDisaggregated(b *testing.B)    { benchExperiment(b, "disagg") }

// BenchmarkServeScheduler measures the serving simulator itself: simulated
// requests completed per wall-clock second of scheduler execution.
func BenchmarkServeScheduler(b *testing.B) {
	s, err := Open(Config{Platform: "tdx", Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	const requests = 32
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := s.Serve(ServeConfig{RatePerSec: 8, Requests: requests, OutputLen: 16})
		if err != nil {
			b.Fatal(err)
		}
		if rep.Completed+rep.Dropped+rep.Unfinished != requests {
			b.Fatalf("lost requests: %+v", rep)
		}
	}
	b.ReportMetric(float64(requests)*float64(b.N)/b.Elapsed().Seconds(), "simreq/s")
}

// BenchmarkServeSchedulerObserved is the same run with the lifecycle
// observer attached and all three exporters rendered — the observation tax
// relative to BenchmarkServeScheduler's zero-cost disabled path.
func BenchmarkServeSchedulerObserved(b *testing.B) {
	s, err := Open(Config{Platform: "tdx", Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	const requests = 32
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := s.Serve(ServeConfig{RatePerSec: 8, Requests: requests, OutputLen: 16, Observe: true})
		if err != nil {
			b.Fatal(err)
		}
		if rep.Observation == nil || rep.Observation.Events == 0 {
			b.Fatalf("observation missing: %+v", rep)
		}
	}
	b.ReportMetric(float64(requests)*float64(b.N)/b.Elapsed().Seconds(), "simreq/s")
}

// BenchmarkMeasureTDX exercises the core measurement path and reports the
// modeled TDX overhead as a custom metric.
func BenchmarkMeasureTDX(b *testing.B) {
	base, err := Open(Config{Platform: "baremetal", Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	tdx, err := Open(Config{Platform: "tdx", Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	wl := Workload{Model: "llama2-7b", DType: "bf16", InputLen: 1024, OutputLen: 32}
	var overhead float64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		mb, err := base.Measure(wl, MeasureOptions{})
		if err != nil {
			b.Fatal(err)
		}
		mt, err := tdx.Measure(wl, MeasureOptions{})
		if err != nil {
			b.Fatal(err)
		}
		overhead = (mt.MeanTokenLatency - mb.MeanTokenLatency) / mb.MeanTokenLatency * 100
	}
	b.ReportMetric(overhead, "tdx-overhead-%")
}

// BenchmarkFunctionalDecode benchmarks the real (scaled) transformer's
// token decode path — the arithmetic the TEEs protect.
func BenchmarkFunctionalDecode(b *testing.B) {
	s, err := Open(Config{Platform: "baremetal", Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	m, err := s.LoadModel("llama2-7b", "bf16", 256)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Generate("benchmark prompt for decode", GenerateOptions{MaxNewTokens: 4}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRAGQuery benchmarks the retrieval path per method.
func BenchmarkRAGQuery(b *testing.B) {
	s, err := Open(Config{Platform: "tdx", System: "EMR2", Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	r, err := s.NewRAG(nil)
	if err != nil {
		b.Fatal(err)
	}
	for _, method := range []string{"bm25", "reranked", "sbert"} {
		b.Run(method, func(b *testing.B) {
			b.ReportAllocs()
			var lat float64
			for i := 0; i < b.N; i++ {
				_, l, err := r.Query(method, "enclave attestation latency overhead", 10)
				if err != nil {
					b.Fatal(err)
				}
				lat = l
			}
			b.ReportMetric(lat*1e3, "modeled-ms/query")
		})
	}
}

// BenchmarkCostSweep benchmarks the Fig 12 pricing sweep.
func BenchmarkCostSweep(b *testing.B) {
	s, err := Open(Config{Platform: "tdx", System: "EMR2", Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	wl := Workload{Model: "llama2-7b", Batch: 4, InputLen: 128, OutputLen: 64}
	b.ReportAllocs()
	var best float64
	for i := 0; i < b.N; i++ {
		best = 0
		for _, v := range []int{8, 16, 32, 60} {
			est, err := s.EstimateCost(wl, MeasureOptions{}, v)
			if err != nil {
				b.Fatal(err)
			}
			if best == 0 || est.USDPerMTok < best {
				best = est.USDPerMTok
			}
		}
	}
	b.ReportMetric(best, "usd-per-mtok")
}

// Ensure every registered experiment has a benchmark above — a compile-time
// style guard executed as a cheap test.
func TestBenchmarkCoverage(t *testing.T) {
	covered := map[string]bool{
		"fig1": true, "fig3": true, "fig4": true, "fig5": true, "fig6": true,
		"fig7": true, "fig8": true, "fig9": true, "fig10": true, "fig11": true,
		"fig12": true, "fig13": true, "fig14": true, "table1": true,
		"othermodels": true, "snc": true,
		"sev": true, "b100": true, "scaleout": true, "hybrid": true,
		"spr": true, "ablation": true, "serving": true,
		"chunked": true, "prefix": true, "fleet": true,
		"hetero": true, "autoscale": true, "preempt": true, "obs": true,
		"attrib": true, "overload": true, "disagg": true,
	}
	for _, e := range Experiments() {
		if !covered[e.ID] {
			t.Errorf("experiment %s has no benchmark target", e.ID)
		}
	}
	if len(Experiments()) != len(covered) {
		t.Errorf("experiment count %d != benchmark count %d", len(Experiments()), len(covered))
	}
	_ = fmt.Sprintf // keep fmt imported even if metrics change
}
